#!/usr/bin/env python3
"""Markdown link lint (stdlib only; no third-party deps).

Scans the given markdown files/directories for inline links and
validates the *local* ones: relative file targets must exist (resolved
against the linking file's directory), and ``#fragment`` targets must
match a heading in the destination file (GitHub anchor slugs). External
``http(s)``/``mailto`` links are counted but not fetched — CI must not
depend on the network.

Usage (mirrors the CI invocation)::

    python tools/check_links.py README.md EXPERIMENTS.md docs/
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterator, List, Set

#: Inline markdown links: ``[text](target)``; images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks must not contribute false links.
_FENCE_RE = re.compile(r"^(```|~~~)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def iter_markdown_files(roots: List[str]) -> Iterator[Path]:
    """Yield every ``.md`` file under the given files/directories."""
    for root in roots:
        path = Path(root)
        if path.is_file():
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # Strip inline markup the renderer drops from the anchor.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # link text only
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> Set[str]:
    """All heading anchor slugs a markdown file defines."""
    slugs: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: Path) -> List[str]:
    """Return a list of broken-link messages for one markdown file."""
    problems: List[str] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: counted, never fetched
            base, _, fragment = target.partition("#")
            dest = path if not base else (path.parent / base).resolve()
            if not dest.exists():
                problems.append(f"{path}:{lineno}: missing target {target!r}")
                continue
            if fragment and dest.suffix == ".md":
                if github_slug(fragment) not in heading_slugs(dest):
                    problems.append(
                        f"{path}:{lineno}: no heading for anchor {target!r}"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="markdown files or directories")
    args = parser.parse_args(argv)

    files = list(iter_markdown_files(args.paths))
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path))

    print(f"checked {len(files)} markdown file(s)")
    if problems:
        for problem in problems:
            print(f"BROKEN LINK: {problem}", file=sys.stderr)
        return 1
    print("all local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
