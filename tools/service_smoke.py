#!/usr/bin/env python3
"""CI smoke for the experiment service (docs/SERVICE.md).

Boots ``python -m repro serve`` on a unix socket, submits a small fig10
slice twice, and asserts:

* round 1 computes every configuration (with a level-k progressive
  event arriving before each final result);
* round 2 is pure store hits, byte-identical to round 1;
* both match a direct in-process run of the same grid;
* the server's stats agree (computed == configs, no errors);
* after a forced SIGKILL + restart (same socket, store and journal),
  the *same client* reconnects and resubmits automatically, the answer
  is byte-identical, and the journal holds no pending accepts;
* ``python -m repro store fsck`` reports the served store clean.

Writes the server's final stats JSON to ``--out`` for the CI artifact.
Exits non-zero on any violation. Run from the repo root:

    PYTHONPATH=src python tools/service_smoke.py --out store_stats.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

GRID = {"scale": "tiny", "trace_count": 3, "invocations": 1,
        "trace_duration_ms": 800}
CONFIGS = [
    {"workload": "MatMul", "mode": "precise", "bits": None},
    {"workload": "MatMul", "mode": "swp", "bits": 8},
    {"workload": "MatMul", "mode": "swp", "bits": 4},
]


def direct_grid():
    """The same slice, run directly on the batch engine (ground truth)."""
    from repro.experiments.common import (
        ExperimentSetup,
        _sample_run_to_dict,
        calibrate_environment,
        measure_precise_cycles,
        run_benchmark,
    )
    from repro.workloads import make_workload

    os.environ["REPRO_BATCH"] = "1"  # the engine the service computes on
    setup = ExperimentSetup(**GRID)
    workload = make_workload("MatMul", "tiny")
    environment = calibrate_environment(measure_precise_cycles(workload), setup)
    runs = []
    for config in CONFIGS:
        result = run_benchmark(
            workload, config["mode"], config["bits"], "clank", setup, environment
        )
        runs.append([_sample_run_to_dict(r) for r in result.runs])
    del os.environ["REPRO_BATCH"]
    return runs


def submit_round(client):
    """Submit every config; returns (sources, runs, progressive counts)."""
    sources, runs, previews = [], [], []
    for config in CONFIGS:
        events = []
        result = client.submit(
            {**config, "runtime": "clank", **GRID},
            full=True, on_event=events.append,
        )
        sources.append(result["source"])
        runs.append(result["runs"])
        previews.append(
            sum(1 for e in events if e.get("event") == "progressive")
        )
    return sources, runs, previews


def spawn_server(socket_path, store_dir, journal_path):
    """One `python -m repro serve` subprocess with the journal armed."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--store", store_dir,
         "--journal", journal_path],
        env={**os.environ, "PYTHONPATH": "src"},
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="store_stats.json",
                        help="where to write the server stats artifact")
    args = parser.parse_args()

    from repro.service.client import ServiceClient
    from repro.service.journal import pending_jobs

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        socket_path = os.path.join(tmp, "svc.sock")
        store_dir = os.path.join(tmp, "store")
        journal_path = os.path.join(tmp, "journal.jsonl")
        server = spawn_server(socket_path, store_dir, journal_path)
        client = ServiceClient.connect(
            socket_path, timeout=30, retries=8, backoff=0.1
        )
        try:
            cold_sources, cold_runs, previews = submit_round(client)
            warm_sources, warm_runs, _ = submit_round(client)
            stats = client.stats()

            # Forced reconnect: SIGKILL the server mid-session, restart
            # it on the same socket + store + journal, and resubmit on
            # the SAME client object — the retry/backoff loop must
            # redial and the answer must be identical (a store hit).
            server.kill()
            server.wait(timeout=30)
            server = spawn_server(socket_path, store_dir, journal_path)
            retry_sources, retry_runs, _ = submit_round(client)
            if retry_sources != ["store"] * len(CONFIGS):
                failures.append(
                    f"post-restart round not pure store hits: {retry_sources}"
                )
            if retry_runs != cold_runs:
                failures.append("post-restart results differ from cold run")
            if pending_jobs(journal_path):
                failures.append("journal left pending accepts after restart")
            client.shutdown()
        finally:
            client.close()
            if server.poll() is None:
                server.kill()
            server.wait(timeout=30)

        if cold_sources != ["computed"] * len(CONFIGS):
            failures.append(f"cold round sources: {cold_sources}")
        if any(n < 1 for n in previews):
            failures.append(f"missing level-k progressive events: {previews}")
        if warm_sources != ["store"] * len(CONFIGS):
            failures.append(f"warm round was not pure cache hits: {warm_sources}")
        if warm_runs != cold_runs:
            failures.append("warm results differ from cold results")
        if cold_runs != direct_grid():
            failures.append("service results differ from a direct serial run")
        if stats["computed"] != len(CONFIGS) or stats["errors"]:
            failures.append(f"unexpected scheduler stats: {stats}")
        if stats["store"]["entries"] != len(CONFIGS):
            failures.append(f"unexpected store stats: {stats['store']}")

        # The store the service just wrote must pass fsck clean.
        fsck = subprocess.run(
            [sys.executable, "-m", "repro", "store", "fsck",
             "--store", store_dir],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        if fsck.returncode != 0:
            failures.append("store fsck found defects in a served store")

        with open(args.out, "w", encoding="utf-8") as file:
            json.dump(stats, file, indent=2)
        print(f"service stats -> {args.out}: {json.dumps(stats)}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"service smoke passed: {len(CONFIGS)} configs computed once, "
              "resubmission served from the store, forced reconnect "
              "resumed cleanly, fsck clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
