"""Differential testing: the CPU vs an independent golden model.

Hypothesis generates random straight-line ALU/memory programs; a tiny
independent Python interpreter (written against the ISA *spec*, sharing
no code with `repro.sim.cpu`) predicts the architectural result, and
the two must agree on every register and touched memory word.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Program, to_signed
from repro.sim import CPU, default_memory

MASK32 = 0xFFFFFFFF
SCRATCH_BASE = 0x400


# ---------------------------------------------------------------------------
# Golden model (independent implementation).
# ---------------------------------------------------------------------------


def golden_run(instructions, initial_regs):
    regs = list(initial_regs)
    memory = {}

    def signed(v):
        return v - (1 << 32) if v & 0x80000000 else v

    for instr in instructions:
        op = instr.op
        src = regs[instr.rm] if instr.rm is not None else instr.imm
        if op == "MOV":
            regs[instr.rd] = src & MASK32
        elif op == "MVN":
            regs[instr.rd] = (~src) & MASK32
        elif op == "ADD":
            regs[instr.rd] = (regs[instr.rn] + src) & MASK32
        elif op == "SUB":
            regs[instr.rd] = (regs[instr.rn] - src) & MASK32
        elif op == "RSB":
            regs[instr.rd] = (src - regs[instr.rn]) & MASK32
        elif op == "AND":
            regs[instr.rd] = regs[instr.rn] & src
        elif op == "ORR":
            regs[instr.rd] = regs[instr.rn] | src
        elif op == "EOR":
            regs[instr.rd] = regs[instr.rn] ^ src
        elif op == "BIC":
            regs[instr.rd] = regs[instr.rn] & ~src & MASK32
        elif op == "LSL":
            regs[instr.rd] = (regs[instr.rn] << min(src & 0xFF, 32)) & MASK32
        elif op == "LSR":
            regs[instr.rd] = (regs[instr.rn] & MASK32) >> min(src & 0xFF, 32)
        elif op == "ASR":
            regs[instr.rd] = (signed(regs[instr.rn]) >> min(src & 0xFF, 32)) & MASK32
        elif op == "NEG":
            regs[instr.rd] = (-src) & MASK32
        elif op == "SXTB":
            regs[instr.rd] = (src & 0xFF | (~0xFF if src & 0x80 else 0)) & MASK32
        elif op == "SXTH":
            regs[instr.rd] = (src & 0xFFFF | (~0xFFFF if src & 0x8000 else 0)) & MASK32
        elif op == "UXTB":
            regs[instr.rd] = src & 0xFF
        elif op == "UXTH":
            regs[instr.rd] = src & 0xFFFF
        elif op == "MUL":
            regs[instr.rd] = (regs[instr.rd] * regs[instr.rm]) & MASK32
        elif op == "STR":
            memory[regs[instr.rn] + instr.imm] = regs[instr.rd] & MASK32
        elif op == "LDR":
            regs[instr.rd] = memory.get(regs[instr.rn] + instr.imm, 0)
        elif op == "HALT":
            break
        else:  # pragma: no cover - strategy only generates the above
            raise AssertionError(op)
    return regs, memory


# ---------------------------------------------------------------------------
# Program strategy.
# ---------------------------------------------------------------------------

_REG = st.integers(0, 7)
_IMM = st.integers(0, 0xFFFF)
_SHIFT = st.integers(0, 32)

_THREE_OP = ("ADD", "SUB", "RSB", "AND", "ORR", "EOR", "BIC")
_UNARY = ("MOV", "MVN", "NEG", "SXTB", "SXTH", "UXTB", "UXTH")
_SHIFTS = ("LSL", "LSR", "ASR")


@st.composite
def alu_instruction(draw):
    kind = draw(st.sampled_from(("three", "three_imm", "unary", "unary_imm",
                                 "shift", "mul", "store", "load")))
    rd = draw(_REG)
    if kind == "three":
        return Instruction(draw(st.sampled_from(_THREE_OP)), rd=rd,
                           rn=draw(_REG), rm=draw(_REG))
    if kind == "three_imm":
        return Instruction(draw(st.sampled_from(_THREE_OP)), rd=rd,
                           rn=draw(_REG), imm=draw(_IMM))
    if kind == "unary":
        return Instruction(draw(st.sampled_from(_UNARY)), rd=rd, rm=draw(_REG))
    if kind == "unary_imm":
        return Instruction("MOV", rd=rd, imm=draw(_IMM))
    if kind == "shift":
        return Instruction(draw(st.sampled_from(_SHIFTS)), rd=rd,
                           rn=draw(_REG), imm=draw(_SHIFT))
    if kind == "mul":
        return Instruction("MUL", rd=rd, rn=rd, rm=draw(_REG))
    if kind == "store":
        # R8 holds the scratch base; word slots 0..15.
        return Instruction("STR", rd=rd, rn=8, imm=draw(st.integers(0, 15)) * 4)
    return Instruction("LDR", rd=rd, rn=8, imm=draw(st.integers(0, 15)) * 4)


@st.composite
def programs(draw):
    body = draw(st.lists(alu_instruction(), min_size=1, max_size=40))
    regs = draw(st.lists(st.integers(0, MASK32), min_size=8, max_size=8))
    return body, regs


class TestDifferential:
    @settings(deadline=None, max_examples=120)
    @given(programs())
    def test_cpu_matches_golden_model(self, case):
        body, initial = case
        instructions = body + [Instruction("HALT")]
        program = Program(instructions, {})
        cpu = CPU(program, default_memory())
        for i, value in enumerate(initial):
            cpu.regs[i] = value
        cpu.regs[8] = SCRATCH_BASE
        cpu.run()

        golden_regs, golden_mem = golden_run(
            instructions, initial + [SCRATCH_BASE] + [0] * 7
        )
        for i in range(9):
            assert cpu.regs[i] == golden_regs[i], (i, body)
        for addr, value in golden_mem.items():
            assert cpu.memory.load_word(addr) == value, (hex(addr), body)

    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, MASK32), st.integers(0, MASK32))
    def test_mul_matches_python(self, a, b):
        program = Program([Instruction("MUL", rd=0, rn=0, rm=1), Instruction("HALT")], {})
        cpu = CPU(program, default_memory())
        cpu.regs[0] = a
        cpu.regs[1] = b
        cpu.run()
        assert cpu.regs[0] == (a * b) & MASK32

    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, MASK32), st.integers(0, MASK32))
    def test_flags_match_arm_semantics(self, a, b):
        """CMP sets flags so signed/unsigned branches agree with Python."""
        program = Program(
            [Instruction("CMP", rn=0, rm=1), Instruction("HALT")], {}
        )
        cpu = CPU(program, default_memory())
        cpu.regs[0] = a
        cpu.regs[1] = b
        cpu.run()
        flags = cpu.flags
        assert flags.condition("EQ") == (a == b)
        assert flags.condition("NE") == (a != b)
        assert flags.condition("LO") == (a < b)  # unsigned
        assert flags.condition("HS") == (a >= b)
        assert flags.condition("HI") == (a > b)
        assert flags.condition("LS") == (a <= b)
        assert flags.condition("LT") == (to_signed(a) < to_signed(b))
        assert flags.condition("GE") == (to_signed(a) >= to_signed(b))
        assert flags.condition("GT") == (to_signed(a) > to_signed(b))
        assert flags.condition("LE") == (to_signed(a) <= to_signed(b))
