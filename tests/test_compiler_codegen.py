"""Tests for code generation: lowering, layout, staging, optimizations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Array,
    Assign,
    BinOp,
    CodegenError,
    Const,
    Kernel,
    Load,
    Loop,
    Pragma,
    SkimPoint,
    Store,
    SubwordLoad,
    Var,
    apply_swp,
    apply_swv,
    compile_kernel,
    evaluate,
    evaluate_logical,
)


def run_compiled(kernel, inputs):
    compiled = compile_kernel(kernel)
    cpu = compiled.make_cpu(inputs)
    cycles = cpu.run()
    outputs = {
        a.name: compiled.read_array(cpu.memory, a.name) for a in kernel.outputs()
    }
    return outputs, cycles, cpu, compiled


def map_kernel(n=8, op="+", rhs_const=None):
    rhs = Const(rhs_const) if rhs_const is not None else Load("B", Var("i"))
    arrays = {
        "A": Array("A", n, 16, "input"),
        "B": Array("B", n, 16, "input"),
        "X": Array("X", n, 32, "output"),
    }
    body = [Loop("i", 0, n, [Store("X", Var("i"), BinOp(op, Load("A", Var("i")), rhs))])]
    return Kernel("map", arrays, body)


class TestLoweringMatchesInterpreter:
    @pytest.mark.parametrize("op", ["+", "-", "&", "|", "^"])
    def test_elementwise_ops(self, op):
        kernel = map_kernel(op=op)
        inputs = {"A": [100, 200, 65535, 0, 7, 9, 31337, 42],
                  "B": [3, 250, 1, 65535, 7, 2, 31337, 0]}
        outputs, _, _, _ = run_compiled(kernel, inputs)
        assert outputs == {"X": evaluate(kernel, inputs)["X"]}

    def test_multiply_strength_reduction_correct(self):
        # Constants with few set bits become shift/add chains.
        for factor in (0, 1, 2, 3, 20, 40, 129, 255, 1000):
            kernel = map_kernel(op="*", rhs_const=factor)
            inputs = {"A": [1, 5, 255, 65535, 0, 9, 100, 3],
                      "B": [0] * 8}
            outputs, _, _, _ = run_compiled(kernel, inputs)
            assert outputs["X"] == evaluate(kernel, inputs)["X"], factor

    def test_full_multiply_uses_iterative_multiplier(self):
        kernel = map_kernel(op="*")
        inputs = {"A": [3] * 8, "B": [1000] * 8}
        _, cycles, cpu, _ = run_compiled(kernel, inputs)
        assert cpu.stats.multiplies == 8

    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8),
        st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8),
    )
    def test_machine_matches_interpreter_property(self, a, b):
        kernel = map_kernel(op="+")
        inputs = {"A": a, "B": b}
        outputs, _, _, _ = run_compiled(kernel, inputs)
        assert outputs["X"] == evaluate(kernel, inputs)["X"]


class TestAnytimeBuildsOnHardware:
    """Compiled anytime kernels match the layout-aware interpreter."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_swp_machine_equals_ir(self, bits):
        base = Kernel(
            "k",
            {
                "A": Array("A", 8, 16, "input", pragma=Pragma("asp", bits)),
                "F": Array("F", 8, 16, "input"),
                "X": Array("X", 8, 32, "output"),
            },
            [Loop("i", 0, 8, [
                Store("X", Var("i"),
                      BinOp("*", Load("F", Var("i")), Load("A", Var("i"))),
                      accumulate=True)
            ])],
        )
        kernel = apply_swp(base)
        inputs = {"A": [0xFFFF, 0x1234, 7, 0, 255, 4096, 65535, 32768],
                  "F": [1, 3, 5, 7, 9, 11, 13, 65535]}
        outputs, _, _, _ = run_compiled(kernel, inputs)
        assert outputs["X"] == evaluate(kernel, inputs)["X"]

    @pytest.mark.parametrize("bits,provisioned", [(4, True), (8, True), (4, False), (8, False)])
    def test_swv_machine_equals_ir(self, bits, provisioned):
        pragma = lambda: Pragma("asv", bits, provisioned)  # noqa: E731
        base = Kernel(
            "k",
            {
                "A": Array("A", 16, 16, "input", pragma=pragma()),
                "B": Array("B", 16, 16, "input", pragma=pragma()),
                "X": Array("X", 16, 16, "output", pragma=pragma()),
            },
            [Loop("i", 0, 16, [
                Store("X", Var("i"), BinOp("+", Load("A", Var("i")), Load("B", Var("i"))))
            ])],
        )
        kernel = apply_swv(base)
        inputs = {"A": list(range(1000, 17000, 1000)), "B": [0xABC] * 16}
        outputs, _, _, _ = run_compiled(kernel, inputs)
        expected = evaluate_logical(kernel, inputs)["X"]
        assert outputs["X"] == expected


class TestSkimCodegen:
    def test_skim_points_emit_skm_end(self):
        kernel = Kernel(
            "k",
            {"X": Array("X", 1, 32, "output")},
            [Store("X", Const(0), Const(1)), SkimPoint(), Store("X", Const(0), Const(2))],
        )
        compiled = compile_kernel(kernel)
        assert "SKM END" in compiled.source
        end = compiled.program.label_address("END")
        assert compiled.program[end].op == "HALT"


class TestOptimizations:
    def test_pointer_strength_reduction_applied(self):
        compiled = compile_kernel(map_kernel())
        # The inner loop must not recompute full addressing per access:
        # pointer bumps appear instead of per-iteration LSL+ADD chains.
        body = compiled.source.split("L_i_1:")[1]
        assert body.count("LSL") == 0

    def test_load_cse_within_statement(self):
        kernel = Kernel(
            "sq",
            {
                "A": Array("A", 4, 16, "input"),
                "X": Array("X", 4, 32, "output"),
            },
            [Loop("i", 0, 4, [
                Store("X", Var("i"), BinOp("*", Load("A", Var("i")), Load("A", Var("i"))))
            ])],
        )
        outputs, _, cpu, compiled = run_compiled(kernel, {"A": [3, 5, 7, 9]})
        assert outputs["X"] == [9, 25, 49, 81]
        # One load per element, not two (the duplicate is CSE'd).
        assert cpu.stats.loads == 4

    def test_register_pressure_detected(self):
        arrays = {f"A{i}": Array(f"A{i}", 2, 16, "input") for i in range(11)}
        arrays["X"] = Array("X", 2, 32, "output")
        kernel = Kernel("big", arrays, [], scalars=("a", "b", "c"))
        with pytest.raises(CodegenError):
            compile_kernel(kernel)

    def test_empty_loop_emits_nothing(self):
        kernel = Kernel(
            "k",
            {"X": Array("X", 1, 32, "output")},
            [Loop("i", 5, 5, [Store("X", Const(0), Const(1))])],
        )
        outputs, _, _, _ = run_compiled(kernel, {})
        assert outputs["X"] == [0]


class TestStagingLayouts:
    def test_row_major_16bit_roundtrip(self):
        kernel = map_kernel()
        compiled = compile_kernel(kernel)
        from repro.sim import default_memory

        memory = default_memory()
        compiled.stage(memory, {"A": [1, 2, 3, 4, 5, 6, 7, 65535]})
        assert compiled.read_array(memory, "A") == [1, 2, 3, 4, 5, 6, 7, 65535]

    def test_wrong_length_rejected(self):
        compiled = compile_kernel(map_kernel())
        from repro.sim import default_memory

        with pytest.raises(ValueError):
            compiled.stage(default_memory(), {"A": [1, 2]})

    def test_slots_do_not_overlap(self):
        compiled = compile_kernel(map_kernel())
        spans = sorted(
            (slot.address, slot.address + slot.size_bytes)
            for slot in compiled.slots.values()
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_code_size_accounting(self):
        base = map_kernel()
        precise_size = compile_kernel(base).code_size_bytes
        assert precise_size > 0
