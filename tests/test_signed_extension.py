"""Tests for the signed fixed-point extension.

The paper's kernels avoid signedness by converting to non-negative
fixed point. This library extends SWP to two's-complement operands: a
signed array's loads sign-extend, and the most significant subword
phase multiplies with the signed ``MUL_ASPS<B>`` variant, so the
two's-complement decomposition
``A = sext(top) * 2^k + sum(unsigned lower subwords)`` stays exactly
distributive mod 2^32.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Array,
    BinOp,
    Kernel,
    Load,
    Loop,
    MulAsp,
    Pragma,
    Store,
    SubwordLoad,
    Var,
    apply_swp,
    compile_kernel,
    evaluate,
)
from repro.isa import assemble, to_signed
from repro.sim import CPU, Multiplier, default_memory

N = 8


def signed_dot_kernel(bits=8):
    return Kernel(
        "sdot",
        {
            "A": Array("A", N, 16, "input", pragma=Pragma("asp", bits), signed=True),
            "F": Array("F", N, 16, "input", signed=True),
            "X": Array("X", N, 32, "output", signed=True),
        },
        [Loop("i", 0, N, [
            Store("X", Var("i"),
                  BinOp("*", Load("F", Var("i")), Load("A", Var("i"))),
                  accumulate=True)
        ])],
    )


class TestSignedIsa:
    def test_mul_asps_assembles(self):
        program = assemble("MUL_ASPS8 R0, R1, #1\nHALT")
        assert program[0].op == "MUL_ASPS8"
        assert program[0].size_bytes == 4

    def test_mul_asps_semantics(self):
        cpu = CPU(assemble("MUL_ASPS4 R0, R1, #2\nHALT"), default_memory())
        cpu.regs[0] = 100
        cpu.regs[1] = (-3) & 0xFFFFFFFF  # sign-extended subword
        cpu.run()
        assert to_signed(cpu.regs[0]) == (100 * -3) << 8

    def test_mul_asps_cycle_cost(self):
        cpu = CPU(assemble("MOV R0, #5\nMOV R1, #3\nMUL_ASPS8 R0, R1, #0\nHALT"),
                  default_memory())
        assert cpu.run() == 1 + 1 + 8 + 1

    def test_multiplier_signed_path(self):
        mul = Multiplier()
        result, cycles = mul.mul_asp_signed(7, (-2) & 0xFFFFFFFF, width=8, position=1)
        assert to_signed(result) == (7 * -2) << 8
        assert cycles == 8


class TestSignedIr:
    def test_signed_load_sign_extends(self):
        kernel = Kernel(
            "k",
            {"A": Array("A", 1, 16, "input", signed=True),
             "X": Array("X", 1, 32, "output")},
            [Store("X", _c(0), Load("A", _c(0)))],
        )
        out = evaluate(kernel, {"A": [(-5) & 0xFFFF]})
        assert to_signed(out["X"][0]) == -5

    def test_signed_subword_load(self):
        kernel = Kernel(
            "k",
            {"A": Array("A", 1, 16, "input", signed=True),
             "X": Array("X", 1, 32, "output")},
            [Store("X", _c(0), SubwordLoad("A", _c(0), 8, 8, signed=True))],
        )
        out = evaluate(kernel, {"A": [0x8034]})
        assert to_signed(out["X"][0]) == to_signed(0x80, 8)

    def test_signed_mulasp(self):
        kernel = Kernel(
            "k",
            {"X": Array("X", 1, 32, "output")},
            [Store("X", _c(0), MulAsp(_c(9), _c((-4) & 0xFFFFFFFF), 8, 8, signed_sub=True))],
        )
        out = evaluate(kernel, {})
        assert to_signed(out["X"][0]) == (9 * -4) << 8


def _c(value):
    from repro.compiler import Const

    return Const(value)


class TestSignedSwp:
    def test_pass_marks_top_phase_signed(self):
        transformed = apply_swp(signed_dot_kernel(8))
        loops = [s for s in transformed.body if hasattr(s, "var")]
        from repro.compiler.ir import walk_exprs

        def muls(loop):
            result = []
            for stmt in loop.body:
                for node in walk_exprs(stmt.expr):
                    if isinstance(node, MulAsp):
                        result.append(node)
            return result

        top = muls(loops[0])
        low = muls(loops[1])
        assert top and all(m.signed_sub for m in top)
        assert low and not any(m.signed_sub for m in low)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_signed_convergence_on_hardware(self, bits):
        a = [-30000, -1, 255, -4096, 32767, -32768, 7, 0]
        f = [3, -5, -7, 9, -1, 2, -32768, 5]
        inputs = {"A": [v & 0xFFFF for v in a], "F": [v & 0xFFFF for v in f]}
        expected = [(x * y) & 0xFFFFFFFF for x, y in zip(a, f)]
        compiled = compile_kernel(apply_swp(signed_dot_kernel(bits)))
        cpu = compiled.make_cpu(inputs)
        cpu.run()
        assert compiled.read_array(cpu.memory, "X") == expected

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(-32768, 32767), min_size=N, max_size=N),
        st.lists(st.integers(-32768, 32767), min_size=N, max_size=N),
        st.sampled_from([2, 4, 8]),
    )
    def test_signed_distributivity_property(self, a, f, bits):
        inputs = {"A": [v & 0xFFFF for v in a], "F": [v & 0xFFFF for v in f]}
        expected = [(x * y) & 0xFFFFFFFF for x, y in zip(a, f)]
        transformed = apply_swp(signed_dot_kernel(bits))
        assert evaluate(transformed, inputs)["X"] == expected

    def test_msb_phase_is_signed_approximation(self):
        """Stopping after the signed top phase gives a correctly-signed
        approximation (the headline anytime property for signed data)."""
        a = [-32000, 31000, -512, 16000, -9, 300, -20000, 1]
        f = [100, -100, 50, -50, 25, -25, 10, -10]
        inputs = {"A": [v & 0xFFFF for v in a], "F": [v & 0xFFFF for v in f]}
        compiled = compile_kernel(apply_swp(signed_dot_kernel(8)))
        cpu = compiled.make_cpu(inputs)

        def cut(target, cpu=cpu):
            cpu.halted = True

        cpu.skim_hook = cut
        cpu.run()
        approx = [to_signed(v) for v in compiled.read_array(cpu.memory, "X")]
        for got, (x, y) in zip(approx, zip(a, f)):
            exact = x * y
            if exact == 0:
                continue
            # Same sign and within the dropped-subword bound.
            assert got == 0 or (got < 0) == (exact < 0), (got, exact)
            assert abs(got - exact) <= abs(y) * 256, (got, exact)
