"""Light integration tests for the experiment harness (tiny scale).

The benchmarks/ directory exercises the full default-scale protocol;
these tests check the harness machinery itself quickly.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentSetup,
    calibrate_environment,
    first_skim_cycles,
    measure_precise_cycles,
    median_speedup,
    run_benchmark,
    run_experiment,
)
from repro.experiments import areapower, fig2, fig13, fig15, table1
from repro.experiments.report import ascii_image, format_series, format_table
from repro.workloads import make_workload

TINY = ExperimentSetup(scale="tiny", trace_count=2, invocations=1)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        paper_artifacts = {
            "table1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17", "areapower", "summary",
        }
        ablations = {
            "ablation-memo", "ablation-capacitor",
            "ablation-watchdog", "ablation-runtimes",
            "energy-breakdown",
        }
        extensions = {"fig10-nn", "fig11-nn"}
        assert set(EXPERIMENTS) == paper_artifacts | ablations | extensions

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestCalibration:
    def test_environment_scales_with_kernel(self):
        small = calibrate_environment(10_000, TINY)
        large = calibrate_environment(1_000_000, TINY)
        assert large.capacitor_f > small.capacitor_f
        assert large.watchdog_cycles > small.watchdog_cycles
        assert small.watchdog_cycles < small.swing_cycles

    def test_minimum_swing_enforced(self):
        env = calibrate_environment(100, TINY)
        assert env.swing_cycles == TINY.min_swing_cycles

    def test_capacitor_has_headroom(self):
        env = calibrate_environment(50_000, TINY)
        cap = env.capacitor()
        assert cap.v_max == pytest.approx(3.3)
        assert cap.voltage == pytest.approx(3.0)


class TestRunBenchmark:
    def test_baseline_and_wn_complete(self):
        workload = make_workload("MatAdd", "tiny")
        env = calibrate_environment(measure_precise_cycles(workload), TINY)
        base = run_benchmark(workload, "precise", None, "clank", TINY, env)
        wn = run_benchmark(workload, "swv", 8, "clank", TINY, env)
        assert len(base.runs) == 2  # 2 traces x 1 invocation
        assert base.median_error == 0.0
        assert wn.median_error < 5.0
        assert median_speedup(base, wn) > 0

    def test_first_skim_cycles(self):
        workload = make_workload("MatAdd", "tiny")
        from repro.experiments import build_anytime

        kernel = build_anytime(workload, "swv", 8)
        first, total = first_skim_cycles(kernel, workload.inputs)
        assert 0 < first < total


class TestExperimentJobs:
    def test_unset_means_serial(self, monkeypatch):
        from repro.experiments.common import experiment_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert experiment_jobs() == 1

    def test_valid_value_parsed(self, monkeypatch):
        from repro.experiments.common import experiment_jobs

        monkeypatch.setenv("REPRO_JOBS", "4")
        assert experiment_jobs() == 4

    def test_zero_clamped_to_serial(self, monkeypatch):
        from repro.experiments.common import experiment_jobs

        monkeypatch.setenv("REPRO_JOBS", "0")
        assert experiment_jobs() == 1

    def test_invalid_value_warns_and_runs_serial(self, monkeypatch, capsys):
        from repro.experiments import common

        monkeypatch.setattr(common, "_jobs_warning_emitted", False)
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert common.experiment_jobs() == 1
        err = capsys.readouterr().err
        assert "invalid REPRO_JOBS" in err
        assert "'banana'" in err
        assert "running serially" in err

    def test_invalid_value_warns_exactly_once(self, monkeypatch, capsys):
        """A figure grid consults experiment_jobs() once per benchmark;
        an invalid value must not spam stderr with one warning each."""
        from repro.experiments import common

        monkeypatch.setattr(common, "_jobs_warning_emitted", False)
        monkeypatch.setenv("REPRO_JOBS", "many")
        for _ in range(5):
            assert common.experiment_jobs() == 1
        err = capsys.readouterr().err
        assert err.count("invalid REPRO_JOBS") == 1


class TestWorkerCacheStatelessness:
    """Regression: cached kernels/workloads must not leak state between
    samples — the same spec must produce bit-identical SampleRuns whether
    it hits warm caches or a fresh (worker-process-like) cold start."""

    @staticmethod
    def _spec(runtime="clank", mode="swv", bits=8):
        from repro.experiments.common import SampleSpec

        workload = make_workload("MatAdd", "tiny")
        env = calibrate_environment(measure_precise_cycles(workload), TINY)
        return SampleSpec(
            workload_name="MatAdd",
            scale="tiny",
            mode=mode,
            bits=bits,
            runtime=runtime,
            trace_index=1,
            invocation=0,
            capacitor_f=env.capacitor_f,
            watchdog_cycles=env.watchdog_cycles,
            trace_count=TINY.trace_count,
            trace_duration_ms=TINY.trace_duration_ms,
            trace_seed=TINY.trace_seed,
            max_wall_ms=TINY.max_wall_ms,
        )

    @staticmethod
    def _clear_caches():
        from repro.experiments import common

        common._worker_workloads.clear()
        common._worker_kernels.clear()
        common._worker_traces.clear()
        common._worker_records.clear()

    @pytest.mark.parametrize("replay", [False, True])
    def test_warm_cache_matches_cold_start(self, monkeypatch, replay):
        from repro.experiments.common import _run_sample

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        if replay:
            monkeypatch.setenv("REPRO_REPLAY", "1")
        else:
            monkeypatch.delenv("REPRO_REPLAY", raising=False)
        spec = self._spec()

        self._clear_caches()
        cold = _run_sample(spec)
        warm = _run_sample(spec)  # second in-process run: all caches hot
        assert warm == cold

        self._clear_caches()  # emulate a fresh worker process
        fresh = _run_sample(spec)
        assert fresh == cold


class TestExperimentModules:
    def test_table1_tiny(self):
        result = table1.run(TINY)
        assert len(result.rows) == 6
        assert "Conv2d" in result.as_text()

    def test_fig2_tiny(self):
        result = fig2.run(TINY)
        assert result.anytime_error < result.truncated_error
        assert "Figure 2" in result.as_text()

    def test_fig13_tiny(self):
        result = fig13.run(TINY)
        assert result.speedup("precise", None, False) == 1.0
        assert result.speedup("swp", 4, True) > 1.0

    def test_fig15_tiny(self):
        result = fig15.run(TINY, widths=(1, 4))
        assert {r.bits for r in result.rows} == {1, 4}

    def test_areapower_model(self):
        result = areapower.run()
        assert result.fmax_far_above_system_clock()
        assert result.mux_area_negligible()
        assert result.memo_table_cheaper_than_multiplier()


class TestReportFormatting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", 0.001)], title="T")
        assert "T" in text and "a" in text and "bb" in text
        assert "0.001" in text

    def test_format_series(self):
        text = format_series("s", [0.5, 1.0], [10.0, 0.0])
        assert "# s" in text
        assert text.count("\n") == 2

    def test_ascii_image_levels(self):
        image = ascii_image([0, 128, 255], width=3)
        assert len(image) == 3
        assert image[0] == " "
        assert image[2] == "@"
