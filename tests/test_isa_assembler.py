"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, Instruction, assemble


class TestBasicParsing:
    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0

    def test_comments_and_blank_lines_skipped(self):
        program = assemble(
            """
            @ a comment
            ; another comment
            // and another
            NOP  @ trailing comment
            """
        )
        assert len(program) == 1
        assert program[0].op == "NOP"

    def test_mov_immediate(self):
        program = assemble("MOV R3, #42")
        assert program[0] == Instruction("MOV", rd=3, imm=42)

    def test_mov_register(self):
        program = assemble("MOV R3, R4")
        assert program[0] == Instruction("MOV", rd=3, rm=4)

    def test_hex_immediate(self):
        program = assemble("MOV R0, #0x2000")
        assert program[0].imm == 0x2000

    def test_register_aliases(self):
        program = assemble("MOV R0, SP\nMOV R1, LR\nMOV R2, PC")
        assert [i.rm for i in program] == [13, 14, 15]

    def test_case_insensitive_mnemonics(self):
        program = assemble("mov r0, #1\nadd r0, r0, #2")
        assert program[0].op == "MOV"
        assert program[1].op == "ADD"

    def test_three_operand_add(self):
        program = assemble("ADD R0, R1, R2")
        assert program[0] == Instruction("ADD", rd=0, rn=1, rm=2)

    def test_two_operand_add_duplicates_dest(self):
        program = assemble("ADD R0, R1")
        assert program[0] == Instruction("ADD", rd=0, rn=0, rm=1)

    def test_add_immediate(self):
        program = assemble("ADD R0, R1, #8")
        assert program[0] == Instruction("ADD", rd=0, rn=1, imm=8)

    def test_cmp_register_and_immediate(self):
        program = assemble("CMP R0, R1\nCMP R0, #5")
        assert program[0] == Instruction("CMP", rn=0, rm=1)
        assert program[1] == Instruction("CMP", rn=0, imm=5)


class TestMemoryOperands:
    def test_load_immediate_offset(self):
        program = assemble("LDR R0, [R1, #4]")
        assert program[0] == Instruction("LDR", rd=0, rn=1, imm=4)

    def test_load_register_offset(self):
        program = assemble("LDR R0, [R1, R2]")
        assert program[0] == Instruction("LDR", rd=0, rn=1, rm=2, imm=0)

    def test_load_no_offset(self):
        program = assemble("LDR R0, [R1]")
        assert program[0] == Instruction("LDR", rd=0, rn=1, imm=0)

    def test_byte_and_half_variants(self):
        program = assemble("LDRB R0, [R1]\nLDRH R2, [R3]\nSTRB R4, [R5]\nSTRH R6, [R7]")
        assert [i.op for i in program] == ["LDRB", "LDRH", "STRB", "STRH"]

    def test_store(self):
        program = assemble("STR R0, [R1, #8]")
        assert program[0] == Instruction("STR", rd=0, rn=1, imm=8)


class TestLabelsAndBranches:
    def test_label_resolution(self):
        program = assemble(
            """
            LOOP:
                ADD R0, R0, #1
                CMP R0, #10
                BNE LOOP
                HALT
            """
        )
        assert program.label_address("LOOP") == 0
        assert program[2].target == 0

    def test_label_on_same_line(self):
        program = assemble("START: NOP\nB START")
        assert program.label_address("START") == 0
        assert program[1].target == 0

    def test_forward_reference(self):
        program = assemble("B END\nNOP\nEND: HALT")
        assert program[0].target == 2

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("B NOWHERE")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError):
            assemble("L: NOP\nL: NOP")

    def test_skm_resolves_target(self):
        program = assemble("SKM END\nNOP\nEND: HALT")
        assert program[0].op == "SKM"
        assert program[0].target == 2

    def test_bl_and_bx(self):
        program = assemble("BL FUNC\nHALT\nFUNC: BX LR")
        assert program[0].target == 2
        assert program[2].rm == 14


class TestWnExtensions:
    def test_mul_asp8(self):
        program = assemble("MUL_ASP8 R4, R5, #1")
        assert program[0] == Instruction("MUL_ASP8", rd=4, rn=4, rm=5, imm=1)

    def test_mul_asp4(self):
        program = assemble("MUL_ASP4 R4, R5, #3")
        assert program[0].imm == 3

    def test_negative_subword_position_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("MUL_ASP8 R4, R5, #-1")

    def test_add_asv(self):
        program = assemble("ADD_ASV8 R3, R4")
        assert program[0] == Instruction("ADD_ASV8", rd=3, rn=3, rm=4)

    def test_sub_asv(self):
        program = assemble("SUB_ASV16 R3, R4")
        assert program[0].op == "SUB_ASV16"


class TestDirectives:
    def test_equ_constant(self):
        program = assemble(".equ N, 64\nMOV R0, #N")
        assert program[0].imm == 64
        assert program.constants["N"] == 64

    def test_equ_hex(self):
        program = assemble(".equ BASE, 0x2000\nMOV R0, #BASE")
        assert program[0].imm == 0x2000

    def test_section_directives_ignored(self):
        program = assemble(".text\nNOP\n.data")
        assert len(program) == 1

    def test_unknown_directive_raises(self):
        with pytest.raises(AssemblerError):
            assemble(".frobnicate 12")

    def test_bad_equ_raises(self):
        with pytest.raises(AssemblerError):
            assemble(".equ N")


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            assemble("FROB R0, R1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("MOV R99, #1")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError):
            assemble("MOV R0, #banana")

    def test_halt_with_operands(self):
        with pytest.raises(AssemblerError):
            assemble("HALT R0")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("NOP\nNOP\nFROB R0")
        assert "line 3" in str(excinfo.value)


class TestListingAndCodeSize:
    def test_listing_contains_labels(self):
        program = assemble("LOOP: ADD R0, R0, #1\nB LOOP")
        listing = program.listing()
        assert "LOOP:" in listing
        assert "ADD" in listing

    def test_code_size_counts_wide_wn_ops(self):
        base = assemble("MUL R0, R1\nHALT")
        wn = assemble("MUL_ASP8 R0, R1, #0\nHALT")
        assert base.code_size_bytes == 4
        assert wn.code_size_bytes == 6

    def test_paper_listing2_assembles(self):
        """The paper's Listing 2 (8-bit anytime SWP) round-trips."""
        source = """
        LOOP_MSb:
            LDR  R3, [R0, #0]       @ X[i]
            LDR  R4, [R1, #0]       @ F[i]
            LDRB R5, [R2, #1]       @ A[i][MSb]
            MUL_ASP8 R4, R5, #1     @ X += F * A
            ADD  R3, R4
            STR  R3, [R0, #0]
            B    LOOP_MSb
            SKM  END
        LOOP_LSb:
            LDR  R3, [R0, #0]
            LDR  R4, [R1, #0]
            LDRB R5, [R2, #0]
            MUL_ASP8 R4, R5, #0
            ADD  R3, R4
            STR  R3, [R0, #0]
            B    LOOP_LSb
        END:
            HALT
        """
        program = assemble(source)
        assert program.label_address("END") == len(program) - 1
        assert program[7].op == "SKM"
        assert program[7].target == program.label_address("END")


class TestListingRoundTrip:
    """Fuzz: a program's listing reassembles to the same program."""

    SOURCES = [
        "MOV R0, #1\nADD R0, R0, #2\nHALT",
        """
        START:
            MOV R0, #0
        LOOP:
            LSL R1, R0, #2
            LDR R2, [R1, #0x100]
            MUL_ASP4 R2, R3, #2
            ADD_ASV8 R2, R4
            STR R2, [R1, #0x200]
            ADD R0, R0, #1
            CMP R0, #12
            BLT LOOP
            SKM DONE
            BL HELPER
        DONE:
            HALT
        HELPER:
            MUL_ASPS8 R5, R6, #1
            BX LR
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_listing_reassembles_identically(self, source):
        first = assemble(source)
        listing = first.listing()
        # Strip the index column the listing adds for readability.
        lines = []
        for line in listing.splitlines():
            if line.endswith(":"):
                lines.append(line)
            else:
                lines.append(line.split(None, 1)[1])
        second = assemble("\n".join(lines))
        assert list(second) == list(first)
        assert second.labels == first.labels
