"""The chaos campaign acceptance bar (ISSUE 5):

* ≥ 500 seeded fault scenarios across clank/nvp/hibernus on two
  workloads report **zero** invariant violations on shipped runtimes;
* the same seed re-runs byte-identically;
* each deliberately broken mutant runtime IS flagged, with the
  invariant its bug breaks — proving the oracle has teeth.
"""

import pytest

from repro.fault.campaign import (
    DEFAULT_RUNTIMES,
    DEFAULT_WORKLOADS,
    generate_scenarios,
    report_to_json,
    run_campaign,
)
from repro.fault.mutants import MUTANTS

SEED = 20260806
COUNT = 500


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=SEED, count=COUNT)


class TestShippedRuntimesAreClean:
    def test_five_hundred_scenarios_zero_violations(self, campaign):
        assert campaign["scenario_count"] == COUNT
        assert campaign["violation_count"] == 0, campaign["violations"][:3]

    def test_every_runtime_and_workload_covered(self, campaign):
        rows = campaign["scenarios"]
        assert {row["runtime"] for row in rows} == set(DEFAULT_RUNTIMES)
        assert {row["workload"] for row in rows} == set(DEFAULT_WORKLOADS)
        assert {row["mode"] for row in rows} == {"precise", "anytime"}

    def test_faults_actually_fired(self, campaign):
        # A campaign that injects nothing proves nothing: the bulk of
        # scenarios must have landed forced outages, and the event mix
        # must include torn commits and bit flips.
        rows = campaign["scenarios"]
        forced = sum(row["injected"]["forced_outages"] for row in rows)
        assert forced > COUNT  # multiple forced outages per scenario on average
        assert sum(row["injected"]["torn_commits"] for row in rows) > 0
        assert sum(row["injected"]["bit_flips"] for row in rows) > 0

    def test_anytime_scenarios_take_skims(self, campaign):
        assert campaign["outcomes"].get("completed-skim", 0) > 0


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, campaign):
        again = run_campaign(seed=SEED, count=COUNT)
        assert report_to_json(again) == report_to_json(campaign)

    def test_scenario_generation_is_pure(self):
        a = generate_scenarios(SEED, 40)
        b = generate_scenarios(SEED, 40)
        assert [s.describe() for s in a] == [s.describe() for s in b]

    def test_different_seed_differs(self):
        a = generate_scenarios(SEED, 40)
        b = generate_scenarios(SEED + 1, 40)
        assert [s.describe() for s in a] != [s.describe() for s in b]


class TestMutantSensitivity:
    """Each shipped mutant must be flagged, with the right invariant."""

    EXPECTED_INVARIANT = {
        "skip-war-scan": "output-golden",
        "non-atomic-commit": "atomic-commit",
    }

    @pytest.mark.parametrize("mutant", sorted(MUTANTS))
    def test_mutant_is_flagged(self, mutant):
        report = run_campaign(seed=SEED, count=150, mutant=mutant)
        assert report["violation_count"] > 0, (
            f"mutant {mutant} ran clean: the oracle lost its sensitivity"
        )
        invariants = {v["invariant"] for v in report["violations"]}
        assert self.EXPECTED_INVARIANT[mutant] in invariants

    def test_registry_matches_expectations(self):
        assert set(MUTANTS) == set(self.EXPECTED_INVARIANT)
