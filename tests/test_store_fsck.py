"""``store fsck``: every defect category is detected, repair
quarantines without touching valid entries, gc deletes outright, and
the CLI round-trips with honest exit codes.
"""

import json

from repro.__main__ import main
from repro.store import cas
from repro.store.cas import FSCK_DEFECTS, ResultStore


def fingerprint(byte):
    return (byte * 2) * 32  # 64 hex chars


def seed_store(root):
    store = ResultStore(str(root))
    for byte in "abc":
        fp = fingerprint(byte)
        store.put(
            fp, cas.result_payload(fp, {"workload": "X"}, [{"n": byte}])
        )
    return store


def break_store(store):
    """Plant one defect of every category plus tmp debris; returns the
    expected category -> relative-path mapping."""
    root = store.root
    expected = {}

    torn = store.path_for(fingerprint("a"))
    torn.write_bytes(torn.read_bytes()[:20])
    expected["torn"] = str(torn.relative_to(root))

    malformed = store.path_for(fingerprint("b"))
    malformed.write_text(json.dumps({"schema": 1, "runs": "not a list"}))
    expected["malformed"] = str(malformed.relative_to(root))

    foreign = store.path_for(fingerprint("c"))
    payload = json.loads(foreign.read_text())
    payload["fingerprint"] = fingerprint("d")
    foreign.write_text(json.dumps(payload))
    expected["foreign"] = str(foreign.relative_to(root))

    stale = store.put(
        fingerprint("e"),
        cas.result_payload(fingerprint("e"), {"workload": "X"}, []),
    )
    payload = json.loads(stale.read_text())
    payload["schema"] = cas.RESULT_SCHEMA_VERSION - 1
    stale.write_text(json.dumps(payload))
    expected["stale_schema"] = str(stale.relative_to(root))

    rotted = store.put(
        fingerprint("f"),
        cas.result_payload(fingerprint("f"), {"workload": "X"}, [{"n": 1}]),
    )
    payload = json.loads(rotted.read_text())
    payload["runs"][0]["n"] = 2  # silent bit rot: checksum now lies
    rotted.write_text(json.dumps(payload))
    expected["checksum_mismatch"] = str(rotted.relative_to(root))

    right = store.put(
        fingerprint("0"),
        cas.result_payload(fingerprint("0"), {"workload": "X"}, []),
    )
    wrong_shard = root / "ff"
    wrong_shard.mkdir(exist_ok=True)
    misplaced = wrong_shard / right.name
    right.rename(misplaced)
    expected["misplaced"] = str(misplaced.relative_to(root))

    debris = root / "aa" / ".dead-writer.1234.5.tmp"
    debris.parent.mkdir(exist_ok=True)
    debris.write_text("half a payload")
    return expected


class TestFsck:
    def test_clean_store_is_clean(self, tmp_path):
        store = seed_store(tmp_path / "store")
        report = store.fsck()
        assert report["clean"] is True
        assert report["checked"] == report["ok"] == 3
        assert report["defect_count"] == 0

    def test_every_defect_category_is_detected(self, tmp_path):
        store = seed_store(tmp_path / "store")
        expected = break_store(store)
        report = store.fsck()
        assert set(expected) == set(FSCK_DEFECTS)
        for category, path in expected.items():
            assert report["defects"][category] == [path], category
        assert report["defect_count"] == len(expected)
        assert report["tmp_debris"] == ["aa/.dead-writer.1234.5.tmp"]
        assert report["clean"] is False

    def test_repair_quarantines_and_sweeps(self, tmp_path):
        store = seed_store(tmp_path / "store")
        break_store(store)
        report = store.fsck(repair=True)
        assert report["clean"] is True
        assert len(report["quarantined"]) == report["defect_count"]
        # Debris is deleted, not quarantined.
        assert "aa/.dead-writer.1234.5.tmp" in report["deleted"]
        # Quarantined files are renamed out of serving position...
        names = [p.name for p in store.quarantine_dir().iterdir()]
        assert names and all(n.endswith(".quarantined") for n in names)
        # ...so a second pass sees a clean store with no defects.
        after = store.fsck()
        assert after["clean"] is True and after["defect_count"] == 0
        # And the store never serves or counts them.
        assert store.load(fingerprint("a")) is None
        assert store.stats()["entries"] == after["checked"]

    def test_gc_deletes_defects_and_quarantine(self, tmp_path):
        store = seed_store(tmp_path / "store")
        break_store(store)
        store.fsck(repair=True)  # fill the quarantine first
        break_store(seed_store(tmp_path / "store"))  # fresh defects
        report = store.fsck(gc=True)
        assert report["clean"] is True
        assert not list(store.quarantine_dir().glob("*"))
        assert store.fsck()["defect_count"] == 0

    def test_valid_entries_survive_repair_untouched(self, tmp_path):
        store = seed_store(tmp_path / "store")
        good = store.load(fingerprint("a"))
        (store.root / "zz").mkdir()
        (store.root / "zz" / f"{fingerprint('9')}.json").write_text("{")
        store.fsck(repair=True)
        assert store.load(fingerprint("a")) == good


class TestFsckCLI:
    def test_exit_codes_and_repair_round_trip(self, tmp_path, capsys):
        root = tmp_path / "store"
        store = seed_store(root)
        assert main(["store", "fsck", "--store", str(root)]) == 0
        assert "store is clean" in capsys.readouterr().out

        break_store(store)
        assert main(["store", "fsck", "--store", str(root)]) == 1
        err = capsys.readouterr().err
        assert "DIRTY" in err and "checksum_mismatch" in err

        assert main(["store", "fsck", "--store", str(root), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert main(["store", "fsck", "--store", str(root)]) == 0

    def test_json_report(self, tmp_path, capsys):
        root = tmp_path / "store"
        break_store(seed_store(root))
        assert main(["store", "fsck", "--store", str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["defect_count"] == 6
        assert set(report["defects"]) == set(FSCK_DEFECTS)

    def test_needs_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "fsck"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err
