"""Tests for the cycle profiler, progress ledger, dashboard and history.

Covers the PR's acceptance criteria: ledger buckets sum exactly to the
supply-consumed active cycles for every engine (interpreter and replay,
all runtimes), serial and ``REPRO_JOBS`` rollups merge identically, the
folded-stack profiler attributes every cycle it reads, the JSON trace
summary keeps a stable schema, ``experiment_jobs`` warns once on junk,
and the bench history gate passes/fails around its rolling median.
"""

import json
import os

import pytest

from repro import benchmarking
from repro.experiments import (
    ExperimentSetup,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
)
from repro.experiments import common
from repro.observability import (
    BUCKETS,
    PROFILER,
    TRACER,
    ProgressLedger,
    fold_cpu,
    fold_record,
    format_folded,
    ledger_path_from_env,
    merge_bucket_dicts,
    profile_path_from_env,
    region_rows,
    summary_to_dict,
)
from repro.observability.dashboard import (
    ReportData,
    load_report_data,
    render_html_report,
    render_report,
)
from repro.observability.profiler import region_of, region_table
from repro.observability.summarize import summarize_trace
from repro.workloads import make_workload

TINY = ExperimentSetup(scale="tiny", trace_count=2, invocations=1)


@pytest.fixture(autouse=True)
def _quiet_observability(monkeypatch):
    """Every test starts with all REPRO_* observability knobs off."""
    for key in ("REPRO_TRACE", "REPRO_REPLAY", "REPRO_METRICS",
                "REPRO_MANIFEST", "REPRO_JOBS", "REPRO_PROFILE",
                "REPRO_LEDGER"):
        monkeypatch.delenv(key, raising=False)
    TRACER.disable()
    PROFILER.disable()
    yield
    TRACER.disable()
    PROFILER.disable()


def _matmul_env():
    workload = make_workload("MatMul", "tiny")
    env = calibrate_environment(measure_precise_cycles(workload), TINY)
    return workload, env


class TestProgressLedger:
    def test_buckets_sum_and_verbs(self):
        ledger = ProgressLedger()
        ledger.execute(100)
        ledger.commit()                      # 100 useful
        ledger.execute(50)
        ledger.discard()                     # 50 dead, 50 cycles of debt
        ledger.execute(80)
        ledger.commit()                      # 50 reexec + 30 useful
        ledger.overhead("checkpoint", 7)
        ledger.overhead("restore", 9)
        ledger.close()
        assert ledger.cycles_dict() == {
            "useful": 130, "reexec": 50, "checkpoint": 7,
            "restore": 9, "dead": 50,
        }
        assert ledger.total_cycles == 246

    def test_close_commits_pending_work(self):
        ledger = ProgressLedger()
        ledger.execute(42)
        ledger.close()
        assert ledger.cycles_dict()["useful"] == 42

    def test_merge_is_bucket_sum(self):
        a, b = ProgressLedger(), ProgressLedger()
        a.execute(10)
        a.commit()
        b.overhead("restore", 5)
        a.merge(b)
        assert a.cycles_dict() == {
            "useful": 10, "reexec": 0, "checkpoint": 0,
            "restore": 5, "dead": 0,
        }

    def test_bucket_dict_energy_scales_cycles(self):
        ledger = ProgressLedger()
        ledger.execute(100)
        ledger.close()
        out = ledger.bucket_dict(2e-12)
        assert out["cycles"]["useful"] == 100
        assert out["energy_j"]["useful"] == pytest.approx(200e-12)
        assert out["total_energy_j"] == pytest.approx(200e-12)

    def test_merge_bucket_dicts_associative(self):
        dicts = []
        for seed in (3, 5, 7):
            ledger = ProgressLedger()
            ledger.execute(seed * 10)
            ledger.discard()
            ledger.execute(seed * 20)
            ledger.close()
            dicts.append(ledger.bucket_dict(1e-12))
        left = None
        for d in dicts:
            left = merge_bucket_dicts(left, d)
        right = None
        for d in reversed(dicts):
            right = merge_bucket_dicts(right, d)
        assert left == right
        assert left["total_cycles"] == sum(d["total_cycles"] for d in dicts)


class TestLedgerExactness:
    @pytest.mark.parametrize("runtime", ["clank", "nvp", "hibernus"])
    def test_interp_buckets_sum_to_active_cycles(self, runtime):
        """Every supply-consumed active cycle lands in exactly one bucket."""
        workload, env = _matmul_env()
        result = run_benchmark(workload, "swp", 8, runtime, TINY, env, jobs=1)
        for run in result.runs:
            cycles = run.ledger["cycles"]
            assert set(cycles) == set(BUCKETS)
            assert sum(cycles.values()) == run.ledger["total_cycles"]
            assert run.ledger["total_cycles"] == run.active_cycles
            energy = run.ledger["energy_j"]
            assert sum(energy.values()) == pytest.approx(
                run.ledger["total_energy_j"]
            )

    @pytest.mark.parametrize("runtime", ["clank", "nvp"])
    def test_replay_engine_ledger_matches_interp(self, runtime, monkeypatch):
        """The replay engine books the same buckets as the interpreter."""
        workload, env = _matmul_env()
        interp = run_benchmark(workload, "swp", 8, runtime, TINY, env, jobs=1)
        monkeypatch.setenv("REPRO_REPLAY", "1")
        replay = run_benchmark(workload, "swp", 8, runtime, TINY, env, jobs=1)
        assert interp.runs == replay.runs  # results identical first
        for a, b in zip(interp.runs, replay.runs):
            assert a.ledger == b.ledger
            assert b.ledger["total_cycles"] == b.active_cycles

    def test_serial_and_parallel_rollups_identical(self, monkeypatch):
        """REPRO_JOBS=4 workers must merge to the serial ledger rollup."""
        workload, env = _matmul_env()
        serial = run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        parallel = run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=4)
        assert serial.runs == parallel.runs
        assert serial.merged_ledger() == parallel.merged_ledger()
        merged = serial.merged_ledger()
        assert merged["total_cycles"] == sum(
            r.active_cycles for r in serial.runs
        )

    def test_ledger_rollup_file(self, monkeypatch, tmp_path):
        """REPRO_LEDGER appends one JSONL rollup line per configuration."""
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        workload, env = _matmul_env()
        result = run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 1
        entry = lines[0]
        assert entry["workload"] == "MatMul"
        assert entry["runtime"] == "clank"
        assert entry["samples"] == len(result.runs)
        assert entry["ledger"] == result.merged_ledger()


class TestProfiler:
    def test_env_parse(self, monkeypatch):
        assert profile_path_from_env() is None
        assert ledger_path_from_env() is None
        monkeypatch.setenv("REPRO_PROFILE", "   ")
        monkeypatch.setenv("REPRO_LEDGER", "")
        assert profile_path_from_env() is None
        assert ledger_path_from_env() is None
        monkeypatch.setenv("REPRO_PROFILE", " p.folded ")
        monkeypatch.setenv("REPRO_LEDGER", "l.jsonl")
        assert profile_path_from_env() == "p.folded"
        assert ledger_path_from_env() == "l.jsonl"

    def _halted_cpu(self):
        workload = make_workload("MatMul", "tiny")
        kernel = common.build_anytime(workload, "swp", 8)
        cpu = kernel.make_cpu(workload.inputs)
        while not cpu.halted:
            if cpu.run_cycles(100_000) == 0:
                break
        return cpu

    def test_fold_cpu_accounts_every_cycle(self):
        """Folded stacks reproduce the CPU's cycle total exactly."""
        cpu = self._halted_cpu()
        stacks = fold_cpu(cpu, "mm/clank")
        folded_total = sum(stacks.values())
        assert cpu.stats.cycles == folded_total  # .stats AFTER folding
        assert all(s.startswith("mm/clank;") for s in stacks)

    def test_fold_record_matches_fold_cpu(self):
        """Replay prefix sums attribute identically to live counters."""
        from repro.sim.replay import record_run

        workload = make_workload("MatMul", "tiny")
        kernel = common.build_anytime(workload, "swp", 8)
        cpu = self._halted_cpu()
        live = fold_cpu(cpu, "x")
        live.pop("x;<variable-cost>", None)
        record = record_run(kernel, workload.inputs)
        assert record.replayable
        replayed = fold_record(record, kernel.compiled.program, "x")
        # Live counters park variable costs in a synthetic frame; the
        # replay log knows true per-PC costs, so it only ever shows
        # *more* cycles at a PC, never different PCs.
        assert set(live) <= set(replayed)
        assert sum(replayed.values()) == record.cum_cost[record.length]

    def test_region_attribution(self):
        workload = make_workload("MatMul", "tiny")
        program = common.build_anytime(workload, "swp", 8).compiled.program
        indices, names = region_table(program)
        assert indices == sorted(indices)
        assert region_of(0, indices, names) == "_entry" or indices[0] == 0
        last = indices[-1]
        assert region_of(last, indices, names) == names[-1]
        assert region_of(last + 5, indices, names) == names[-1]

    def test_format_folded_and_region_rows(self):
        stacks = {"run;L_k;MUL@7": 600, "run;L_k;LDR@6": 100,
                  "run;L_i;MOV@1": 300}
        text = format_folded(stacks)
        assert text.splitlines() == sorted(text.splitlines())
        assert "run;L_k;MUL@7 600" in text
        rows = region_rows(stacks, top=1)
        assert rows == [["L_k", "700", "70.0%", "MUL@7"]]

    def test_grid_collection_appends_folded_file(self, monkeypatch, tmp_path):
        path = tmp_path / "grid.folded"
        monkeypatch.setenv("REPRO_PROFILE", str(path))
        PROFILER.enable(str(path))
        try:
            workload, env = _matmul_env()
            run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        finally:
            PROFILER.disable()
        lines = path.read_text().splitlines()
        assert lines, "armed grid run must append folded stacks"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert stack.count(";") >= 1

    def test_disarmed_grid_collects_nothing(self):
        assert not PROFILER.enabled
        before = PROFILER.collections
        workload, env = _matmul_env()
        run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        assert PROFILER.collections == before


class TestExperimentJobs:
    @pytest.mark.parametrize("raw", ["0", "-2", "junk"])
    def test_invalid_values_fall_back_serial_with_one_warning(
        self, raw, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_JOBS", raw)
        monkeypatch.setattr(common, "_jobs_warning_emitted", False)
        assert common.experiment_jobs() == 1
        assert common.experiment_jobs() == 1  # second call: no new warning
        err = capsys.readouterr().err
        assert err.count("ignoring invalid REPRO_JOBS") == 1

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 3 ")
        assert common.experiment_jobs() == 3


class TestSummaryJson:
    SCHEMA_KEYS = {
        "schema", "path", "total_events", "parse_errors", "pids",
        "event_counts", "samples", "skim", "outages", "fallback_reasons",
        "orphan_events", "sample_list",
    }

    def _write_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [
            {"t": "sample_start", "pid": 1, "workload": "MatMul",
             "mode": "swp", "bits": 8, "runtime": "clank", "trace": 0,
             "invocation": 0},
            {"t": "outage", "pid": 1, "tick": 40},
            {"t": "replay_fallback", "pid": 1, "reason": "divergence"},
            {"t": "sample_end", "pid": 1, "engine": "interp",
             "completed": True, "skim_taken": False, "wall_ms": 3},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_schema_is_stable(self, tmp_path):
        out = summary_to_dict(summarize_trace(str(self._write_trace(tmp_path))))
        assert set(out) == self.SCHEMA_KEYS
        assert out["schema"] == 1
        assert out["samples"] == {
            "total": 1, "completed": 1, "skimmed": 0,
            "engines": {"interp": 1},
        }
        assert out["fallback_reasons"] == {"divergence": 1}
        sample = out["sample_list"][0]
        assert sample["config"] == "MatMul/swp8/clank"
        assert sample["outages"] == 1
        json.dumps(out)  # fully serializable

    def test_garbage_lines_tolerated(self, tmp_path):
        path = self._write_trace(tmp_path)
        with open(path, "a", encoding="utf-8") as file:
            file.write("{truncated\n\nnot json at all\n")
        out = summary_to_dict(summarize_trace(str(path)))
        assert out["parse_errors"] == 2
        assert out["samples"]["total"] == 1

    def test_limit_caps_sample_list(self, tmp_path):
        summary = summarize_trace(str(self._write_trace(tmp_path)))
        assert summary_to_dict(summary, limit=0)["sample_list"] == []
        assert len(summary_to_dict(summary)["sample_list"]) == 1


class TestDashboard:
    def _data(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "schema": 1, "command": "run fig10", "git_sha": "a" * 40,
            "python": "3.11", "platform": "test",
            "results": [
                {"workload": "MatMul", "mode": "precise", "bits": None,
                 "runtime": "clank", "engine": "interp", "samples": 2,
                 "metrics": {"counters": {"outages": 4},
                             "histograms": {"wall_ms": {
                                 "count": 2, "sum": 20, "min": 8, "max": 12}}}},
                {"workload": "MatMul", "mode": "swp", "bits": 8,
                 "runtime": "clank", "engine": "interp", "samples": 2,
                 "metrics": {"counters": {"outages": 4, "skims_taken": 2},
                             "histograms": {
                                 "wall_ms": {"count": 2, "sum": 10,
                                             "min": 4, "max": 6},
                                 "error": {"count": 2, "sum": 3.0,
                                           "min": 1.0, "max": 2.0}}}},
            ],
        }))
        ledger = tmp_path / "l.jsonl"
        ledger.write_text(json.dumps({
            "workload": "MatMul", "mode": "swp", "bits": 8,
            "runtime": "clank", "engine": "interp", "samples": 2,
            "ledger": {
                "cycles": {"useful": 70, "reexec": 10, "checkpoint": 10,
                           "restore": 5, "dead": 5},
                "energy_j": {"useful": 7e-9, "reexec": 1e-9,
                             "checkpoint": 1e-9, "restore": 5e-10,
                             "dead": 5e-10},
                "total_cycles": 100, "total_energy_j": 1e-8,
            },
        }) + "\n")
        history = tmp_path / "h.jsonl"
        history.write_text("".join(
            json.dumps({"kind": "interp", "configs": [
                {"workload": "MatMul", "mode": "precise", "bits": None,
                 "normalized_fast": 0.2 + 0.01 * i}]}) + "\n"
            for i in range(3)
        ))
        return load_report_data(manifest=str(manifest), ledger=str(ledger),
                                history=str(history))

    def test_text_report_sections(self, tmp_path):
        text = render_report(self._data(tmp_path))
        assert "Configurations" in text
        assert "Forward progress" in text
        assert "2.00x" in text  # 20/2 over 10/2 wall means
        assert "bench history: 3 record(s)" in text

    def test_html_report_is_self_contained(self, tmp_path):
        page = render_html_report(self._data(tmp_path), title="t<&>t")
        assert page.startswith("<!DOCTYPE html>")
        assert "t&lt;&amp;&gt;t" in page  # title escaped
        lowered = page.lower()
        assert "<script" not in lowered
        assert 'src="http' not in lowered and "@import" not in lowered
        for needle in ("--series-1", "prefers-color-scheme: dark",
                       '[data-theme="dark"]', "tabular-nums", "<table",
                       'class="legend"', "polyline", "useful progress"):
            assert needle in page, needle

    def test_empty_data_renders_placeholder(self):
        assert "nothing to report" in render_report(ReportData())
        assert "nothing to report" in render_html_report(ReportData())

    def test_missing_history_is_empty_not_error(self, tmp_path):
        data = load_report_data(history=str(tmp_path / "nope.jsonl"))
        assert data.history == []

    def test_unreadable_manifest_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_report_data(manifest=str(tmp_path / "nope.json"))


class TestBenchHistory:
    def _record(self, value):
        return {"kind": "interp", "configs": [
            {"workload": "MatMul", "mode": "precise", "bits": None,
             "normalized_fast": value}]}

    def _current(self, value):
        return {"configs": [{"workload": "MatMul", "mode": "precise",
                             "bits": None, "normalized_fast": value}]}

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        benchmarking.append_history(self._record(0.2), path)
        benchmarking.append_history(self._record(0.3), path)
        with open(path, "a") as file:
            file.write("garbage line\n")
        records = benchmarking.load_history(path)
        assert len(records) == 2
        assert records[0]["configs"][0]["normalized_fast"] == 0.2

    def test_missing_history_passes(self, tmp_path):
        failures = benchmarking.check_history(
            self._current(0.001), tmp_path / "none.jsonl"
        )
        assert failures == []

    def test_rolling_median_gate(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for value in (0.20, 0.22, 0.24):
            benchmarking.append_history(self._record(value), path)
        assert benchmarking.check_history(self._current(0.20), path) == []
        failures = benchmarking.check_history(self._current(0.10), path)
        assert len(failures) == 1
        assert "rolling median" in failures[0]

    def test_window_ignores_ancient_records(self, tmp_path):
        path = tmp_path / "h.jsonl"
        benchmarking.append_history(self._record(10.0), path)  # ancient
        for value in (0.20, 0.21, 0.22):
            benchmarking.append_history(self._record(value), path)
        assert benchmarking.check_history(
            self._current(0.19), path, window=3
        ) == []

    def test_committed_history_is_seeded(self):
        records = benchmarking.load_history()
        assert len(records) >= 3
        assert any(r.get("kind") == "interp" for r in records)

    def test_history_record_shape(self):
        payload = {"machine_ops_per_s": 1e7, "configs": [
            {"workload": "W", "mode": "m", "bits": 8,
             "normalized_fast": 0.5, "fast_instr_per_s": 123.0,
             "reference_instr_per_s": 45.0, "speedup": 2.7,
             "instructions": 10, "scale": "default"}]}
        record = benchmarking.history_record(payload)
        assert record["kind"] == "interp"
        assert record["configs"] == [
            {"workload": "W", "mode": "m", "bits": 8, "normalized_fast": 0.5}
        ]
        assert "fast_instr_per_s" not in json.dumps(record)
