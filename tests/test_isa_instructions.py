"""Unit tests for instruction definitions and cycle costs."""

import pytest

from repro.isa import (
    ASP_OPS,
    ASP_WIDTHS,
    ASV_OPS,
    ASV_WIDTHS,
    MUL_CYCLES,
    Instruction,
    asp_width,
    asv_width,
    cycle_cost,
)


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("FROB")

    def test_equality_ignores_text_and_line(self):
        a = Instruction("ADD", rd=0, rn=0, rm=1, text="ADD R0, R1", line=3)
        b = Instruction("ADD", rd=0, rn=0, rm=1, text="add r0, r1", line=9)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Instruction("ADD", rd=0, rn=0, rm=1) != Instruction("SUB", rd=0, rn=0, rm=1)
        assert Instruction("ADD", rd=0, rn=0, rm=1) != "ADD"

    def test_wn_ops_are_32bit_encodings(self):
        assert Instruction("MUL_ASP8", rd=0, rn=0, rm=1, imm=0).size_bytes == 4
        assert Instruction("ADD_ASV4", rd=0, rn=0, rm=1).size_bytes == 4
        assert Instruction("SKM", label="END", target=0).size_bytes == 4

    def test_base_ops_are_16bit_encodings(self):
        assert Instruction("ADD", rd=0, rn=0, rm=1).size_bytes == 2
        assert Instruction("MUL", rd=0, rn=0, rm=1).size_bytes == 2
        assert Instruction("LDR", rd=0, rn=1, imm=0).size_bytes == 2

    def test_is_wn_flag(self):
        assert Instruction("MUL_ASP4", rd=0, rn=0, rm=1, imm=0).is_wn
        assert Instruction("SKM", label="L", target=0).is_wn
        assert not Instruction("MUL", rd=0, rn=0, rm=1).is_wn
        assert not Instruction("ADD", rd=0, rn=0, rm=1).is_wn


class TestWidthHelpers:
    @pytest.mark.parametrize("width", ASP_WIDTHS)
    def test_asp_width_roundtrip(self, width):
        assert asp_width(f"MUL_ASP{width}") == width

    @pytest.mark.parametrize("width", ASV_WIDTHS)
    def test_asv_width_roundtrip(self, width):
        assert asv_width(f"ADD_ASV{width}") == width
        assert asv_width(f"SUB_ASV{width}") == width

    def test_asp_width_rejects_non_asp(self):
        with pytest.raises(ValueError):
            asp_width("MUL")

    def test_asv_width_rejects_non_asv(self):
        with pytest.raises(ValueError):
            asv_width("ADD")

    def test_all_asp_widths_have_ops(self):
        assert ASP_OPS == {f"MUL_ASP{b}" for b in ASP_WIDTHS}

    def test_all_asv_widths_have_ops(self):
        assert ASV_OPS == {
            f"{op}_ASV{w}" for op in ("ADD", "SUB") for w in ASV_WIDTHS
        }


class TestCycleCost:
    def test_alu_single_cycle(self):
        assert cycle_cost(Instruction("ADD", rd=0, rn=0, rm=1)) == 1
        assert cycle_cost(Instruction("MOV", rd=0, imm=5)) == 1

    def test_memory_two_cycles(self):
        assert cycle_cost(Instruction("LDR", rd=0, rn=1, imm=0)) == 2
        assert cycle_cost(Instruction("STRB", rd=0, rn=1, imm=0)) == 2

    def test_full_multiply_is_iterative(self):
        assert cycle_cost(Instruction("MUL", rd=0, rn=0, rm=1)) == MUL_CYCLES == 16

    @pytest.mark.parametrize("width", ASP_WIDTHS)
    def test_asp_multiply_costs_width_cycles(self, width):
        instr = Instruction(f"MUL_ASP{width}", rd=0, rn=0, rm=1, imm=0)
        assert cycle_cost(instr) == width

    def test_vector_add_single_cycle(self):
        assert cycle_cost(Instruction("ADD_ASV8", rd=0, rn=0, rm=1)) == 1

    def test_branch_taken_vs_untaken(self):
        branch = Instruction("BEQ", label="L", target=0)
        assert cycle_cost(branch, taken=True) == 2
        assert cycle_cost(branch, taken=False) == 1

    def test_call_costs_three(self):
        assert cycle_cost(Instruction("BL", label="F", target=0), taken=True) == 3

    def test_skim_single_cycle(self):
        assert cycle_cost(Instruction("SKM", label="END", target=0)) == 1
