"""Property-based correctness of intermittent execution.

The strongest invariant in this system: **where the outages fall must
not change the final answer** (only how long it takes). We randomize
the outage pattern through the capacitor size and trace seed and check
the final memory equals the uninterrupted run's for every runtime.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AnytimeConfig, AnytimeKernel
from repro.isa import assemble
from repro.power import Capacitor, EnergyModel, PowerSupply, wifi_trace
from repro.runtime import (
    ClankRuntime,
    HibernusRuntime,
    IntermittentExecutor,
    NVPRuntime,
)
from repro.sim import CPU, default_memory
from repro.workloads import make_workload

# A program with stores, loads, WAR hazards and data-dependent control:
# an in-place prefix-sum then a threshold count.
PROGRAM = """
.equ DATA, 0x100
.equ OUT, 0x8000
.equ N, {n}
    MOV R0, #DATA
    MOV R2, #1
LOOP:
    LSL R3, R2, #2
    ADD R3, R3, R0
    LDR R4, [R3, #0]
    LDR R5, [R3, #-4]
    ADD R4, R4, R5
    STR R4, [R3, #0]
    ADD R2, R2, #1
    CMP R2, #N
    BLT LOOP
    MOV R6, #0
    MOV R2, #0
COUNT:
    LSL R3, R2, #2
    LDR R4, [R0, R3]
    CMP R4, #{threshold}
    BLT SKIP
    ADD R6, R6, #1
SKIP:
    ADD R2, R2, #1
    CMP R2, #N
    BLT COUNT
    MOV R1, #OUT
    STR R6, [R1, #0]
    HALT
"""

N = 64
THRESHOLD = 900


def build_cpu(values):
    source = PROGRAM.format(n=N, threshold=THRESHOLD)
    cpu = CPU(assemble(source), default_memory())
    cpu.memory.write_words(0x100, values)
    return cpu


def continuous_result(values):
    cpu = build_cpu(values)
    cpu.run()
    return cpu.memory.load_word(0x8000), cpu.memory.read_words(0x100, N)


RUNTIMES = {
    "clank": lambda: ClankRuntime(watchdog_cycles=300),
    "nvp": NVPRuntime,
    "hibernus": lambda: HibernusRuntime(snapshot_cycles=120, restore_cycles=120),
}


class TestOutagePlacementInvariance:
    @settings(deadline=None, max_examples=12)
    @given(
        st.lists(st.integers(0, 50), min_size=N, max_size=N),
        st.integers(0, 5),
        st.sampled_from([0.02e-6, 0.05e-6, 0.15e-6]),
        st.sampled_from(sorted(RUNTIMES)),
    )
    def test_final_state_independent_of_outages(self, values, seed, capacitance, runtime_name):
        expected_out, expected_data = continuous_result(values)
        cpu = build_cpu(values)
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=seed),
            Capacitor(capacitance_f=capacitance, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        result = IntermittentExecutor(cpu, supply, RUNTIMES[runtime_name]()).run(
            max_wall_ms=500_000
        )
        assert result.completed, (runtime_name, seed, capacitance)
        assert cpu.memory.load_word(0x8000) == expected_out
        assert cpu.memory.read_words(0x100, N) == expected_data


class TestAnytimeOutageInvariance:
    """The *precise* convergence of anytime builds is also outage-
    invariant: if no skim is taken (register disarmed), the WN build
    under outages produces the exact result."""

    @settings(deadline=None, max_examples=6)
    @given(st.integers(0, 4))
    def test_swp_without_skim_is_exact_under_outages(self, seed):
        workload = make_workload("MatMul", "tiny")
        kernel = AnytimeKernel(workload.kernel, AnytimeConfig(mode="swp", bits=8))
        cpu = kernel.make_cpu(workload.inputs)
        cpu.skim_hook = None  # device never arms the skim register
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=seed),
            Capacitor(capacitance_f=0.1e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        runtime = ClankRuntime(watchdog_cycles=500)
        executor = IntermittentExecutor(cpu, supply, runtime)
        cpu.skim_hook = lambda target: None  # attach() rebinds; disarm again
        result = executor.run(max_wall_ms=500_000)
        assert result.completed
        assert not result.skim_taken
        assert workload.decode(kernel.read_outputs(cpu)) == workload.decoded_reference()
