"""Unit tests for the cycle-level CPU."""

import pytest

from repro.isa import assemble
from repro.sim import CPU, CpuFault, MemoTable, Multiplier, default_memory


def run_program(source, setup=None):
    cpu = CPU(assemble(source), default_memory())
    if setup:
        setup(cpu)
    cycles = cpu.run()
    return cpu, cycles


class TestAluSemantics:
    def test_mov_and_add(self):
        cpu, _ = run_program("MOV R0, #5\nADD R0, R0, #3\nHALT")
        assert cpu.regs[0] == 8

    def test_sub_and_flags(self):
        cpu, _ = run_program("MOV R0, #5\nSUB R0, R0, #5\nHALT")
        assert cpu.regs[0] == 0
        assert cpu.flags.z

    def test_negative_result_sets_n(self):
        cpu, _ = run_program("MOV R0, #5\nSUB R0, R0, #6\nHALT")
        assert cpu.regs[0] == 0xFFFFFFFF
        assert cpu.flags.n

    def test_logical_ops(self):
        cpu, _ = run_program(
            "MOV R0, #0xF0\nMOV R1, #0x3C\n"
            "AND R2, R0, R1\nORR R3, R0, R1\nEOR R4, R0, R1\nBIC R5, R0, R1\nHALT"
        )
        assert cpu.regs[2] == 0x30
        assert cpu.regs[3] == 0xFC
        assert cpu.regs[4] == 0xCC
        assert cpu.regs[5] == 0xC0

    def test_shifts(self):
        cpu, _ = run_program(
            "MOV R0, #1\nLSL R1, R0, #4\nLSR R2, R1, #2\nHALT"
        )
        assert cpu.regs[1] == 16
        assert cpu.regs[2] == 4

    def test_asr_preserves_sign(self):
        def setup(cpu):
            cpu.regs[0] = 0x80000000
        cpu, _ = run_program("ASR R1, R0, #4\nHALT", setup)
        assert cpu.regs[1] == 0xF8000000

    def test_mvn_and_neg(self):
        cpu, _ = run_program("MOV R0, #0\nMVN R1, R0\nMOV R2, #5\nNEG R3, R2\nHALT")
        assert cpu.regs[1] == 0xFFFFFFFF
        assert cpu.regs[3] == (-5) & 0xFFFFFFFF

    def test_extends(self):
        def setup(cpu):
            cpu.regs[0] = 0x0000FF80
        cpu, _ = run_program(
            "SXTB R1, R0\nUXTB R2, R0\nSXTH R3, R0\nUXTH R4, R0\nHALT", setup
        )
        assert cpu.regs[1] == 0xFFFFFF80
        assert cpu.regs[2] == 0x80
        assert cpu.regs[3] == 0xFFFFFF80
        assert cpu.regs[4] == 0xFF80

    def test_adc_uses_carry(self):
        cpu, _ = run_program(
            "MOV R0, #0\nMVN R0, R0\nADD R0, R0, #1\n"  # sets carry
            "MOV R1, #0\nADC R1, R1, #0\nHALT"
        )
        assert cpu.regs[1] == 1


class TestMemoryInstructions:
    def test_word_store_load(self):
        cpu, _ = run_program(
            "MOV R0, #0x100\nMOV R1, #1234\nSTR R1, [R0, #0]\nLDR R2, [R0, #0]\nHALT"
        )
        assert cpu.regs[2] == 1234

    def test_byte_store_load(self):
        cpu, _ = run_program(
            "MOV R0, #0x100\nMOV R1, #0x1FF\nSTRB R1, [R0, #0]\nLDRB R2, [R0, #0]\nHALT"
        )
        assert cpu.regs[2] == 0xFF

    def test_register_offset_addressing(self):
        cpu, _ = run_program(
            "MOV R0, #0x100\nMOV R1, #8\nMOV R2, #77\n"
            "STR R2, [R0, R1]\nLDR R3, [R0, R1]\nHALT"
        )
        assert cpu.regs[3] == 77
        assert cpu.memory.load_word(0x108) == 77

    def test_half_store_load(self):
        cpu, _ = run_program(
            "MOV R0, #0x100\nMOV R1, #0xBEEF\nSTRH R1, [R0, #2]\nLDRH R2, [R0, #2]\nHALT"
        )
        assert cpu.regs[2] == 0xBEEF


class TestControlFlow:
    def test_loop(self):
        cpu, _ = run_program(
            """
            MOV R0, #0
            LOOP:
                ADD R0, R0, #1
                CMP R0, #10
                BLT LOOP
            HALT
            """
        )
        assert cpu.regs[0] == 10

    def test_unsigned_conditions(self):
        # 0xFFFFFFFF unsigned > 1 -> BHI taken
        cpu, _ = run_program(
            """
            MOV R0, #0
            SUB R0, R0, #1
            CMP R0, #1
            BHI HIGH
            MOV R1, #0
            B DONE
            HIGH:
            MOV R1, #1
            DONE:
            HALT
            """
        )
        assert cpu.regs[1] == 1

    def test_signed_conditions(self):
        # -1 signed < 1 -> BLT taken
        cpu, _ = run_program(
            """
            MOV R0, #0
            SUB R0, R0, #1
            CMP R0, #1
            BLT LESS
            MOV R1, #0
            B DONE
            LESS:
            MOV R1, #1
            DONE:
            HALT
            """
        )
        assert cpu.regs[1] == 1

    def test_call_return(self):
        cpu, _ = run_program(
            """
            MOV R0, #1
            BL FUNC
            ADD R0, R0, #100
            HALT
            FUNC:
                ADD R0, R0, #10
                BX LR
            """
        )
        assert cpu.regs[0] == 111

    def test_halted_cpu_refuses_step(self):
        cpu, _ = run_program("HALT")
        with pytest.raises(CpuFault):
            cpu.step()

    def test_runaway_program_detected(self):
        cpu = CPU(assemble("LOOP: B LOOP"), default_memory())
        with pytest.raises(CpuFault):
            cpu.run(max_instructions=100)


class TestCycleAccounting:
    def test_basic_costs(self):
        _, cycles = run_program("MOV R0, #1\nHALT")
        assert cycles == 2  # MOV(1) + HALT(1)

    def test_load_costs_two(self):
        _, cycles = run_program("MOV R0, #0x100\nLDR R1, [R0, #0]\nHALT")
        assert cycles == 1 + 2 + 1

    def test_full_multiply_costs_sixteen(self):
        _, cycles = run_program("MOV R0, #3\nMOV R1, #4\nMUL R0, R1\nHALT")
        assert cycles == 1 + 1 + 16 + 1

    def test_asp_multiply_costs_width(self):
        _, cycles = run_program("MOV R0, #3\nMOV R1, #4\nMUL_ASP4 R0, R1, #0\nHALT")
        assert cycles == 1 + 1 + 4 + 1

    def test_taken_branch_costs_two(self):
        _, cycles = run_program("B SKIP\nSKIP: HALT")
        assert cycles == 2 + 1

    def test_untaken_branch_costs_one(self):
        _, cycles = run_program("MOV R0, #1\nCMP R0, #0\nBEQ NEVER\nNEVER: HALT")
        assert cycles == 1 + 1 + 1 + 1


class TestWnInstructions:
    def test_mul_asp_semantics(self):
        cpu, _ = run_program(
            "MOV R0, #100\nMOV R1, #3\nMUL_ASP8 R0, R1, #1\nHALT"
        )
        assert cpu.regs[0] == (100 * 3) << 8

    def test_mul_asp_accumulation_equals_full_product(self):
        # X = F * A via two 8-bit subword stages (paper Listing 2 pattern).
        cpu, _ = run_program(
            """
            MOV R0, #0        @ X accumulator
            MOV R1, #300      @ F
            MOV R2, #0x12     @ A[MSb]
            MOV R3, #0x34     @ A[LSb]
            MOV R4, R1
            MUL_ASP8 R4, R2, #1
            ADD R0, R0, R4
            MOV R4, R1
            MUL_ASP8 R4, R3, #0
            ADD R0, R0, R4
            HALT
            """
        )
        assert cpu.regs[0] == 300 * 0x1234

    def test_add_asv_lane_isolation(self):
        cpu, _ = run_program(
            """
            MOV R0, #0xFF
            MOV R1, #1
            ADD_ASV8 R0, R1
            HALT
            """
        )
        assert cpu.regs[0] == 0  # carry out of lane 0 is dropped

    def test_sub_asv(self):
        def setup(cpu):
            cpu.regs[0] = 0x05050505
            cpu.regs[1] = 0x01020304
        cpu, _ = run_program("SUB_ASV8 R0, R1\nHALT", setup)
        assert cpu.regs[0] == 0x04030201

    def test_skim_invokes_hook(self):
        cpu = CPU(assemble("SKM END\nNOP\nEND: HALT"), default_memory())
        seen = []
        cpu.skim_hook = seen.append
        cpu.run()
        assert seen == [2]

    def test_skim_without_hook_is_noop(self):
        cpu, _ = run_program("SKM END\nEND: HALT")

    def test_memoized_multiplier_integration(self):
        program = assemble(
            """
            MOV R0, #9
            MOV R1, #9
            MOV R2, R0
            MUL R2, R1
            MOV R3, R0
            MUL R3, R1
            HALT
            """
        )
        cpu = CPU(program, default_memory(), multiplier=Multiplier(memo_table=MemoTable()))
        cycles = cpu.run()
        assert cpu.regs[2] == cpu.regs[3] == 81
        # second multiply hits in the memo table: 1 cycle instead of 16
        assert cycles == 4 * 1 + 16 + 1 + 1


class TestHooks:
    def test_load_store_hooks(self):
        cpu = CPU(
            assemble("MOV R0, #0x100\nMOV R1, #7\nSTR R1, [R0, #0]\nLDR R2, [R0, #0]\nHALT"),
            default_memory(),
        )
        loads, stores = [], []
        cpu.load_hook = lambda addr, size: loads.append((addr, size))
        cpu.store_hook = lambda addr, size: stores.append((addr, size)) or 0
        cpu.run()
        assert loads == [(0x100, 4)]
        assert stores == [(0x100, 4)]

    def test_store_hook_extra_cycles_charged(self):
        cpu = CPU(
            assemble("MOV R0, #0x100\nSTR R0, [R0, #0]\nHALT"),
            default_memory(),
        )
        cpu.store_hook = lambda addr, size: 50
        cycles = cpu.run()
        assert cycles == 1 + (2 + 50) + 1


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        cpu = CPU(assemble("MOV R0, #1\nMOV R1, #2\nHALT"), default_memory())
        cpu.step()
        snap = cpu.snapshot()
        cpu.step()
        cpu.step()
        assert cpu.halted
        cpu.restore(snap)
        assert cpu.pc == 1
        assert not cpu.halted
        assert cpu.regs[0] == 1
        assert cpu.regs[1] == 0

    def test_reset(self):
        cpu = CPU(assemble("MOV R0, #1\nHALT"), default_memory())
        cpu.run()
        cpu.reset()
        assert cpu.pc == 0
        assert cpu.regs[0] == 0
        assert not cpu.halted


class TestRunCycles:
    def test_budget_respected(self):
        cpu = CPU(
            assemble("MOV R0, #1\nMOV R1, #2\nMOV R2, #3\nHALT"),
            default_memory(),
        )
        consumed = cpu.run_cycles(2)
        assert consumed == 2
        assert cpu.pc == 2
        assert not cpu.halted

    def test_instruction_not_started_if_it_cannot_finish(self):
        cpu = CPU(assemble("MOV R0, #3\nMUL R0, R0\nHALT"), default_memory())
        consumed = cpu.run_cycles(10)  # MOV fits, 16-cycle MUL does not
        assert consumed == 1
        assert cpu.pc == 1

    def test_run_to_halt_within_budget(self):
        cpu = CPU(assemble("MOV R0, #1\nHALT"), default_memory())
        consumed = cpu.run_cycles(1000)
        assert consumed == 2
        assert cpu.halted


class TestStats:
    def test_instruction_mix_recorded(self):
        cpu, _ = run_program(
            "MOV R0, #0x100\nLDR R1, [R0, #0]\nSTR R1, [R0, #4]\n"
            "MUL R1, R1\nMUL_ASP8 R1, R1, #0\nADD_ASV8 R1, R1\nHALT"
        )
        stats = cpu.stats
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.multiplies == 2
        assert stats.wn_instructions == 2
        assert stats.instructions == 7

    def test_wn_fraction(self):
        cpu, _ = run_program("MUL_ASP8 R0, R1, #0\nNOP\nNOP\nHALT")
        assert cpu.stats.wn_fraction == pytest.approx(0.25)

    def test_merge_and_reset(self):
        cpu1, _ = run_program("NOP\nHALT")
        cpu2, _ = run_program("NOP\nNOP\nHALT")
        cpu1.stats.merge(cpu2.stats)
        assert cpu1.stats.instructions == 5
        cpu1.stats.reset()
        assert cpu1.stats.instructions == 0
