"""Unit and integration tests for the Clank checkpointing runtime."""

import pytest

from repro.isa import assemble
from repro.power import Capacitor, EnergyModel, PowerSupply, constant_trace, square_trace, wifi_trace
from repro.runtime import ClankRuntime, IntermittentExecutor, NVPRuntime, SkimRegister
from repro.sim import CPU, default_memory

# Sums N input words into an accumulator in NVM. The store to the
# accumulator is a classic read-modify-write: Clank must detect the WAR
# violation and checkpoint before the store.
SUM_SOURCE = """
.equ IN, 0x100
.equ OUT, 0x8000
.equ N, {n}
    MOV R0, #IN
    MOV R1, #OUT
    MOV R2, #0
LOOP:
    LSL R3, R2, #2
    LDR R4, [R0, R3]
    LDR R5, [R1, #0]
    ADD R5, R5, R4
    STR R5, [R1, #0]
    ADD R2, R2, #1
    CMP R2, #N
    BLT LOOP
    HALT
"""


def make_sum_cpu(n=10):
    cpu = CPU(assemble(SUM_SOURCE.format(n=n)), default_memory())
    cpu.memory.write_words(0x100, list(range(1, n + 1)))
    return cpu


class TestWarDetection:
    def test_war_violation_triggers_checkpoint(self):
        cpu = make_sum_cpu(n=3)
        runtime = ClankRuntime()
        runtime.attach(cpu)
        cpu.run()
        # Only the FIRST store to the accumulator violates: after the
        # checkpoint the accumulator is written-before-read, so the rest
        # of the loop is one idempotent region.
        assert runtime.stats.war_violations == 1
        assert runtime.stats.checkpoints == 1

    def test_war_violates_again_after_watchdog_checkpoint(self):
        # A watchdog checkpoint opens a new region, whose first
        # accumulator load is again a read-before-write.
        cpu = make_sum_cpu(n=50)
        runtime = ClankRuntime(watchdog_cycles=100)
        runtime.attach(cpu)
        while not cpu.halted:
            used = cpu.run_cycles(100)
            runtime.on_tick(used)
        assert runtime.stats.war_violations > 1

    def test_write_before_read_is_idempotent(self):
        # Store to an address never read first: no violation.
        cpu = CPU(
            assemble("MOV R0, #0x100\nMOV R1, #5\nSTR R1, [R0, #0]\nLDR R2, [R0, #0]\nHALT"),
            default_memory(),
        )
        runtime = ClankRuntime()
        runtime.attach(cpu)
        cpu.run()
        assert runtime.stats.war_violations == 0

    def test_read_then_write_different_addresses_ok(self):
        cpu = CPU(
            assemble("MOV R0, #0x100\nLDR R1, [R0, #0]\nSTR R1, [R0, #4]\nHALT"),
            default_memory(),
        )
        runtime = ClankRuntime()
        runtime.attach(cpu)
        cpu.run()
        assert runtime.stats.war_violations == 0

    def test_partial_byte_overlap_detected(self):
        # Word load at 0x100, byte store at 0x102 overlaps the read range.
        cpu = CPU(
            assemble("MOV R0, #0x100\nLDR R1, [R0, #0]\nSTRB R1, [R0, #2]\nHALT"),
            default_memory(),
        )
        runtime = ClankRuntime()
        runtime.attach(cpu)
        cpu.run()
        assert runtime.stats.war_violations == 1

    def test_checkpoint_cost_charged(self):
        cpu = make_sum_cpu(n=1)
        runtime = ClankRuntime(checkpoint_cycles=100)
        runtime.attach(cpu)
        cycles = cpu.run()
        baseline_cpu = make_sum_cpu(n=1)
        baseline_cycles = baseline_cpu.run()
        assert cycles == baseline_cycles + 100


class TestWatchdog:
    def test_watchdog_checkpoint_fires(self):
        cpu = CPU(assemble("LOOP: ADD R0, R0, #1\nCMP R0, #10000\nBLT LOOP\nHALT"), default_memory())
        runtime = ClankRuntime(watchdog_cycles=1000)
        runtime.attach(cpu)
        # Simulate executor ticks.
        while not cpu.halted:
            used = cpu.run_cycles(500)
            runtime.on_tick(used)
        assert runtime.stats.watchdog_checkpoints > 10

    def test_watchdog_resets_after_checkpoint(self):
        runtime = ClankRuntime(watchdog_cycles=1000)
        cpu = make_sum_cpu(1)
        runtime.attach(cpu)
        assert runtime.on_tick(999) == 0
        assert runtime.on_tick(1) == runtime.checkpoint_cycles
        assert runtime.on_tick(999) == 0  # counter was reset


class TestRestoreSemantics:
    def test_restore_rewinds_to_checkpoint(self):
        cpu = make_sum_cpu(n=5)
        runtime = ClankRuntime()
        runtime.attach(cpu)
        # Run a few instructions past the entry checkpoint, then crash.
        for _ in range(4):
            cpu.step()
        runtime.on_outage()
        cost = runtime.on_restore()
        assert cost == runtime.restore_cycles
        assert cpu.pc == 0  # back to entry checkpoint
        assert cpu.regs[2] == 0

    def test_skim_overrides_restore_pc(self):
        cpu = CPU(assemble("SKM END\nLOOP: B LOOP\nEND: HALT"), default_memory())
        runtime = ClankRuntime()
        runtime.attach(cpu)
        cpu.step()  # execute SKM: arms the register
        assert runtime.skim.armed
        runtime.on_outage()
        runtime.on_restore()
        assert cpu.pc == 2  # skim target, not checkpoint PC
        assert not runtime.skim.armed

    def test_tracking_sets_cleared_on_outage(self):
        cpu = make_sum_cpu(n=5)
        runtime = ClankRuntime()
        runtime.attach(cpu)
        for _ in range(5):
            cpu.step()
        runtime.on_outage()
        assert not runtime._read_first
        assert not runtime._written


class TestIntermittentExecutionCorrectness:
    """The headline property: intermittent execution with outages produces
    exactly the same final memory as uninterrupted execution."""

    def continuous_result(self, n):
        cpu = make_sum_cpu(n)
        cpu.run()
        return cpu.memory.load_word(0x8000)

    @pytest.mark.parametrize("trace_seed", [0, 1, 2])
    def test_clank_matches_continuous_under_outages(self, trace_seed):
        n = 40
        expected = self.continuous_result(n)
        cpu = make_sum_cpu(n)
        supply = PowerSupply(
            wifi_trace(duration_ms=4000, seed=trace_seed),
            Capacitor(),
            EnergyModel(),
        )
        executor = IntermittentExecutor(cpu, supply, ClankRuntime())
        result = executor.run()
        assert result.completed
        assert cpu.memory.load_word(0x8000) == expected

    def test_outages_actually_happened(self):
        # Use a weak square trace so the run must span several power cycles.
        n = 2000
        expected = self.continuous_result(n)
        cpu = make_sum_cpu(n)
        supply = PowerSupply(
            square_trace(1.5e-3, on_ms=20, off_ms=60, periods=50),
            Capacitor(capacitance_f=0.2e-6, v_initial=3.0),
            EnergyModel(),
        )
        executor = IntermittentExecutor(cpu, supply, ClankRuntime(watchdog_cycles=1000))
        result = executor.run()
        assert result.completed
        assert result.outages >= 1
        assert cpu.memory.load_word(0x8000) == expected

    def test_nvp_matches_continuous_under_outages(self):
        n = 2000
        expected = self.continuous_result(n)
        cpu = make_sum_cpu(n)
        supply = PowerSupply(
            square_trace(1.5e-3, on_ms=20, off_ms=60, periods=50),
            Capacitor(capacitance_f=0.2e-6, v_initial=3.0),
            EnergyModel(backup_overhead=0.2),
        )
        executor = IntermittentExecutor(cpu, supply, NVPRuntime())
        result = executor.run()
        assert result.completed
        assert result.outages >= 1
        assert cpu.memory.load_word(0x8000) == expected

    def test_nvp_faster_than_clank_on_same_trace(self):
        """NVP avoids re-execution, so it finishes in fewer active cycles."""
        n = 1500
        trace = square_trace(1.5e-3, on_ms=20, off_ms=60, periods=50)

        cpu_clank = make_sum_cpu(n)
        clank_result = IntermittentExecutor(
            cpu_clank,
            PowerSupply(trace, Capacitor(capacitance_f=0.2e-6, v_initial=3.0), EnergyModel()),
            ClankRuntime(watchdog_cycles=1000),
        ).run()

        cpu_nvp = make_sum_cpu(n)
        nvp_result = IntermittentExecutor(
            cpu_nvp,
            PowerSupply(trace, Capacitor(capacitance_f=0.2e-6, v_initial=3.0), EnergyModel()),
            NVPRuntime(),
        ).run()

        assert clank_result.completed and nvp_result.completed
        assert nvp_result.active_cycles < clank_result.active_cycles
