"""Host-level resilience of the experiment service:

* the job journal survives torn tails, corrupt lines and duplicate
  accepts, and ``compact()`` keeps exactly the pending worklist;
* ``serve --recover`` replays pending accepts idempotently (store-first,
  re-fingerprinting stale keys) so no accepted job is ever lost;
* a stale unix socket from a crashed server is detected and unlinked,
  while a *live* server's socket is refused with a typed error;
* the client enforces a read deadline, reconnects + resubmits after a
  server restart, and honors ``busy`` load-shed rejections;
* the per-job wall-clock watchdog turns a hung compute into a typed
  ``job-timeout`` error and retires the job in the journal.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.errors import (
    ServiceBusy,
    ServiceDisconnected,
    ServiceTimeout,
    SocketInUseError,
)
from repro.service import ExperimentService, JobJournal, ServiceClient
from repro.service.journal import _sealed_line, pending_jobs, read_records
from repro.service.jobs import prepare
from repro.service.protocol import JobSpec

GRID = {"scale": "tiny", "trace_count": 2, "invocations": 1,
        "trace_duration_ms": 800}


def job(workload="MatMul", mode="precise", bits=None, runtime="clank"):
    return {"workload": workload, "mode": mode, "bits": bits,
            "runtime": runtime, **GRID}


class running_service:
    """One service on a fresh unix socket, own thread, arbitrary knobs."""

    def __init__(self, tmp_path, store=True, **kwargs):
        self.socket_path = str(tmp_path / "svc.sock")
        self.service = ExperimentService(
            store_dir=str(tmp_path / "store") if store else None, **kwargs
        )
        self.ready = threading.Event()

    def __enter__(self):
        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                self.service.serve(
                    socket_path=self.socket_path,
                    on_ready=lambda _: self.ready.set(),
                )
            ),
            daemon=True,
        )
        self.thread.start()
        assert self.ready.wait(10), "service never came up"
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient.connect(self.socket_path, timeout=5) as client:
                client.shutdown()
        except OSError:
            pass
        self.thread.join(10)

    def client(self, **kwargs):
        return ServiceClient.connect(self.socket_path, timeout=10, **kwargs)


def await_drained(client, deadline_s=30.0):
    """Poll stats until the journal is drained and nothing is in flight."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        stats = client.stats()
        journal = stats.get("journal") or {}
        if not journal.get("pending") and not stats.get("inflight"):
            return stats
        time.sleep(0.05)
    raise AssertionError("journal never drained")


class TestJournal:
    def test_accept_done_lifecycle(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.accept("aa" * 32, {"workload": "MatMul"})
        journal.accept("bb" * 32, {"workload": "Home"})
        assert [fp for fp, _ in journal.pending()] == ["aa" * 32, "bb" * 32]
        journal.done("aa" * 32)
        assert [fp for fp, _ in journal.pending()] == ["bb" * 32]
        journal.fail("bb" * 32, "poisoned")
        assert journal.pending() == []
        journal.close()

    def test_torn_tail_and_corrupt_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.accept("aa" * 32, {"workload": "MatMul"})
        journal.close()
        with open(path, "ab") as file:
            # A bit-rotted middle line: valid JSON, wrong crc.
            file.write(b'{"crc":"00000000","fingerprint":"'
                       + b"cc" * 32 + b'","rec":"accept","seq":9}\n')
            # A torn tail: the write died mid-record, no newline.
            file.write(b'{"rec":"done","fingerprint":"' + b"aa" * 16)
        assert [r["fingerprint"] for r in read_records(path)] == ["aa" * 32]
        assert [fp for fp, _ in pending_jobs(path)] == ["aa" * 32]

    def test_duplicate_accepts_collapse(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        for _ in range(3):
            journal.accept("aa" * 32, {"workload": "MatMul"})
        assert len(journal.pending()) == 1
        journal.done("aa" * 32)
        assert journal.pending() == []
        journal.close()

    def test_compact_keeps_only_pending(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.accept("aa" * 32, {"workload": "MatMul"})
        journal.done("aa" * 32)
        journal.accept("bb" * 32, {"workload": "Home"})
        assert journal.compact() == 1
        records = read_records(path)
        assert [(r["rec"], r["fingerprint"]) for r in records] == [
            ("accept", "bb" * 32)
        ]
        # The reopened descriptor keeps appending after the rewrite.
        journal.done("bb" * 32)
        assert journal.pending() == []
        journal.close()

    def test_crc_seal_round_trips(self):
        line = _sealed_line({"rec": "done", "seq": 1, "fingerprint": "ab"})
        record = json.loads(line)
        assert set(record) == {"rec", "seq", "fingerprint", "crc"}


class TestRecovery:
    def test_pending_accept_replays_to_store(self, tmp_path):
        spec = JobSpec.from_dict(job())
        fingerprint = prepare(spec).fingerprint
        journal_path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(journal_path)
        journal.accept(fingerprint, spec.to_dict())
        journal.close()

        with running_service(tmp_path, journal_path=journal_path) as svc:
            with svc.client() as client:
                stats = await_drained(client)
                assert stats["recovered"] == 1
                # The replayed job is a store hit for everyone now.
                result = client.submit(job(), full=True)
        assert result["source"] == "store"
        assert pending_jobs(journal_path) == []

    def test_stale_fingerprint_is_rekeyed_and_still_replays(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(journal_path)
        journal.accept("00" * 32, JobSpec.from_dict(job()).to_dict())
        journal.close()

        with running_service(tmp_path, journal_path=journal_path) as svc:
            with svc.client() as client:
                stats = await_drained(client)
                assert stats["recovered"] == 1
                assert client.submit(job())["source"] == "store"
        # The stale key was retired, the real one accepted and completed.
        recs = read_records(journal_path)
        assert ("fail", "00" * 32) in [
            (r["rec"], r["fingerprint"]) for r in recs
        ]

    def test_unreplayable_record_is_retired_not_looped(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(journal_path)
        journal.accept("11" * 32, {"workload": "NoSuchWorkload", "mode": "swv"})
        journal.close()

        with running_service(tmp_path, journal_path=journal_path) as svc:
            with svc.client() as client:
                await_drained(client)
        assert pending_jobs(journal_path) == []


class TestStaleSocket:
    def test_dead_socket_file_is_unlinked(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(path)
        leftover.close()  # no listener: connect will be refused
        ExperimentService._prepare_socket_path(path)
        assert not (tmp_path / "stale.sock").exists()

    def test_non_socket_debris_is_unlinked(self, tmp_path):
        path = tmp_path / "stale.sock"
        path.write_text("not a socket")
        ExperimentService._prepare_socket_path(str(path))
        assert not path.exists()

    def test_live_socket_is_refused(self, tmp_path):
        path = str(tmp_path / "live.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        try:
            with pytest.raises(SocketInUseError, match="live server"):
                ExperimentService._prepare_socket_path(path)
        finally:
            listener.close()

    def test_server_boots_over_crash_debris(self, tmp_path):
        # Regression: a crashed server's socket file must not block the
        # next boot.
        path = tmp_path / "svc.sock"
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(path))
        leftover.close()
        with running_service(tmp_path) as svc, svc.client() as client:
            assert client.ping()["protocol"] == 1


class TestClientResilience:
    def test_read_deadline_raises_typed_timeout(self, tmp_path):
        path = str(tmp_path / "mute.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)  # accepts via backlog, never answers
        try:
            with ServiceClient.connect(
                path, timeout=5, read_timeout=0.2
            ) as client:
                with pytest.raises(ServiceTimeout, match="read deadline"):
                    client.ping()
        finally:
            listener.close()

    def test_reconnect_and_resubmit_after_restart(self, tmp_path):
        with running_service(tmp_path) as svc:
            client = svc.client(retries=6, backoff=0.05)
            assert client.submit(job())["source"] == "computed"
        # Server gone; same socket path, same store, new server.
        retried = []
        with running_service(tmp_path):
            result = client.submit(
                job(), on_retry=lambda *a: retried.append(a)
            )
            client.close()
        assert result["source"] == "store"
        assert retried, "expected at least one reconnect attempt"
        # Send-side failures surface as raw OSErrors, read-side ones as
        # ServiceDisconnected; both are retryable by contract.
        assert isinstance(retried[0][1], (ServiceDisconnected, OSError))

    def test_raw_socket_client_cannot_reconnect(self, tmp_path):
        with running_service(tmp_path) as svc:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(svc.socket_path)
            client = ServiceClient(raw)
            assert client.ping()["protocol"] == 1
        with pytest.raises(ServiceDisconnected, match="raw socket"):
            client.submit(job(), retries=2, backoff=0.01)
        client.close()

    def test_busy_shed_is_typed_and_carries_retry_after(self, tmp_path):
        with running_service(tmp_path, max_pending=0) as svc:
            with svc.client() as client:
                with pytest.raises(ServiceBusy) as excinfo:
                    client.submit(job(), retries=0)
                assert excinfo.value.retry_after == 0.5
                # Retries back off and try again (still shed here).
                retried = []
                with pytest.raises(ServiceBusy):
                    client.submit(
                        job(), retries=2, backoff=0.01,
                        on_retry=lambda *a: retried.append(a),
                    )
                assert len(retried) == 2
                stats = client.stats()
        assert stats["busy_rejections"] == 4
        # The shed never journals or schedules anything.
        assert stats["computed"] == 0


class TestWatchdog:
    def test_hung_job_times_out_and_is_retired(self, tmp_path, monkeypatch):
        import repro.service.server as server_mod

        def hung_compute(ctx, progress=None):
            time.sleep(3.0)
            raise AssertionError("watchdog never fired")

        monkeypatch.setattr(server_mod, "compute", hung_compute)
        journal_path = str(tmp_path / "journal.jsonl")
        with running_service(
            tmp_path, journal_path=journal_path, job_timeout=0.3
        ) as svc:
            with svc.client() as client:
                with pytest.raises(ServiceTimeout, match="wall-clock"):
                    client.submit(job(), retries=0)
                stats = client.stats()
        assert stats["job_timeouts"] == 1
        # The fail record retires the job: recovery must not replay it.
        assert pending_jobs(journal_path) == []
