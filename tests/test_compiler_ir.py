"""Unit and property tests for the kernel IR and its interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler import (
    Array,
    Assign,
    BinOp,
    Const,
    Kernel,
    Load,
    Loop,
    MulAsp,
    Pragma,
    SkimPoint,
    Store,
    SubwordLoad,
    Var,
    VecOp,
    evaluate,
)


def simple_kernel(body, arrays=None, scalars=()):
    arrays = arrays or {
        "A": Array("A", 4, 16, "input"),
        "X": Array("X", 4, 32, "output"),
    }
    return Kernel("t", arrays, body, scalars=scalars)


class TestValidation:
    def test_pragma_kinds(self):
        assert Pragma("asp", 8).kind == "asp"
        with pytest.raises(ValueError):
            Pragma("foo")
        with pytest.raises(ValueError):
            Pragma("asp", 5)

    def test_array_constraints(self):
        with pytest.raises(ValueError):
            Array("A", 4, 12)
        with pytest.raises(ValueError):
            Array("A", 0, 16)
        with pytest.raises(ValueError):
            Array("A", 4, 16, "sideways")

    def test_undeclared_scalar_rejected(self):
        kernel = simple_kernel([Assign("ghost", Const(1))])
        with pytest.raises(ValueError):
            kernel.validate()

    def test_undeclared_array_rejected(self):
        kernel = simple_kernel([Store("NOPE", Const(0), Const(1))])
        with pytest.raises(ValueError):
            kernel.validate()

    def test_loop_vars_implicitly_declared(self):
        kernel = simple_kernel(
            [Loop("i", 0, 4, [Store("X", Var("i"), Var("i"))])]
        )
        kernel.validate()

    def test_bad_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1), Const(2))

    def test_bad_vecop_rejected(self):
        with pytest.raises(ValueError):
            VecOp("*", Const(1), Const(2), 8)
        with pytest.raises(ValueError):
            VecOp("+", Const(1), Const(2), 5)

    def test_bad_loop_step(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 4, [], step=0)


class TestInterpreter:
    def test_elementwise_map(self):
        kernel = simple_kernel(
            [Loop("i", 0, 4, [Store("X", Var("i"), BinOp("+", Load("A", Var("i")), Const(1)))])]
        )
        out = evaluate(kernel, {"A": [10, 20, 30, 40]})
        assert out["X"] == [11, 21, 31, 41]

    def test_accumulating_store(self):
        kernel = simple_kernel(
            [
                Loop("i", 0, 4, [Store("X", Const(0), Load("A", Var("i")), accumulate=True)]),
            ]
        )
        out = evaluate(kernel, {"A": [1, 2, 3, 4]})
        assert out["X"][0] == 10

    def test_store_masks_to_element_width(self):
        arrays = {"X": Array("X", 1, 16, "output")}
        kernel = simple_kernel([Store("X", Const(0), Const(0x12345))], arrays)
        assert evaluate(kernel, {})["X"] == [0x2345]

    def test_scalar_accumulation(self):
        kernel = simple_kernel(
            [
                Assign("acc", Const(0)),
                Loop("i", 0, 4, [Assign("acc", BinOp("+", Var("acc"), Load("A", Var("i"))))]),
                Store("X", Const(0), Var("acc")),
            ],
            scalars=("acc",),
        )
        assert evaluate(kernel, {"A": [1, 2, 3, 4]})["X"][0] == 10

    def test_subword_load_semantics(self):
        kernel = simple_kernel(
            [Store("X", Const(0), SubwordLoad("A", Const(0), 8, 8))]
        )
        assert evaluate(kernel, {"A": [0x1234, 0, 0, 0]})["X"][0] == 0x12

    def test_mulasp_shift_semantics(self):
        kernel = simple_kernel(
            [Store("X", Const(0), MulAsp(Const(5), Const(3), 8, 8))]
        )
        assert evaluate(kernel, {"A": [0] * 4})["X"][0] == (5 * 3) << 8

    def test_vecop_cuts_carries(self):
        kernel = simple_kernel(
            [Store("X", Const(0), VecOp("+", Const(0x00FF), Const(0x0001), 8))]
        )
        assert evaluate(kernel, {"A": [0] * 4})["X"][0] == 0

    def test_skim_point_is_semantic_noop(self):
        kernel = simple_kernel(
            [SkimPoint(), Store("X", Const(0), Const(7)), SkimPoint()]
        )
        assert evaluate(kernel, {"A": [0] * 4})["X"][0] == 7

    def test_shifts(self):
        kernel = simple_kernel(
            [
                Store("X", Const(0), BinOp("<<", Const(3), Const(4))),
                Store("X", Const(1), BinOp(">>", Const(0x100), Const(4))),
            ]
        )
        out = evaluate(kernel, {"A": [0] * 4})
        assert out["X"][0] == 48
        assert out["X"][1] == 16

    def test_wrong_input_length_rejected(self):
        kernel = simple_kernel([])
        with pytest.raises(ValueError):
            evaluate(kernel, {"A": [1, 2]})

    @given(st.lists(st.integers(0, 0xFFFF), min_size=4, max_size=4))
    def test_map_matches_python_property(self, values):
        kernel = simple_kernel(
            [Loop("i", 0, 4, [Store("X", Var("i"), BinOp("*", Load("A", Var("i")), Const(3)))])]
        )
        out = evaluate(kernel, {"A": values})
        assert out["X"] == [(v * 3) & 0xFFFFFFFF for v in values]
