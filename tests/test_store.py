"""The content-addressed result store (``REPRO_STORE``):

* a warm store serves byte-identical results without executing a single
  sample, across both the serial and the ``REPRO_JOBS`` suite paths;
* bumping the result schema (or the package version) changes every
  fingerprint and the ``REPRO_RESUME`` key, so stale entries recompute
  instead of being served;
* torn, truncated and foreign files load as misses and are overwritten;
* concurrent writers (process pools and threads) never corrupt an
  entry, and hit == miss byte for byte;
* ``REPRO_FAULTS`` disables the store entirely (chaos runs must stress
  recompute paths, not the cache);
* ``bench --grid`` records each config's commit log exactly once — the
  replay/batch/store engine passes reuse it, never re-record.
"""

import json
import threading

import pytest

import repro.experiments.common as common
import repro.store.cas as cas
from repro.experiments.common import (
    ExperimentSetup,
    _resume_key,
    _sample_run_to_dict,
    calibrate_environment,
    experiment_store,
    measure_precise_cycles,
    run_benchmark,
    run_benchmark_suite,
)
from repro.observability.dashboard import load_report_data, render_report
from repro.store.cas import ResultStore, code_schema_tag, config_fingerprint
from repro.workloads import make_workload

SETUP = ExperimentSetup(
    scale="tiny", trace_count=3, invocations=2, trace_duration_ms=800
)
CONFIGS = [("precise", None), ("swv", 8)]


@pytest.fixture(scope="module")
def home():
    workload = make_workload("Home", "tiny")
    environment = calibrate_environment(measure_precise_cycles(workload), SETUP)
    return workload, environment


def full_dicts(results):
    """Every field of every sample, metrics and ledger included."""
    return [[_sample_run_to_dict(run) for run in result.runs] for result in results]


def run_once(home):
    workload, environment = home
    return run_benchmark(workload, "swv", 8, "clank", SETUP, environment)


def forbid_execution(monkeypatch):
    """Any sample execution from here on fails the test."""
    monkeypatch.setattr(
        common, "_map_samples",
        lambda *a, **k: pytest.fail("sample executed despite a warm store"),
    )


class TestStoreHits:
    def test_hit_is_byte_identical_and_skips_execution(
        self, home, tmp_path, monkeypatch
    ):
        baseline = run_once(home)  # no store: the ground truth
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        miss = run_once(home)
        forbid_execution(monkeypatch)
        hit = run_once(home)
        assert full_dicts([hit]) == full_dicts([miss]) == full_dicts([baseline])

    def test_suite_path_uses_store_under_jobs(self, home, tmp_path, monkeypatch):
        workload, environment = home
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_JOBS", "4")
        first = run_benchmark_suite(workload, CONFIGS, "clank", SETUP, environment)
        forbid_execution(monkeypatch)
        second = run_benchmark_suite(workload, CONFIGS, "clank", SETUP, environment)
        assert full_dicts(second) == full_dicts(first)

    def test_chaos_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        assert experiment_store() is not None
        monkeypatch.setenv("REPRO_FAULTS", "7")
        assert experiment_store() is None


class TestSelfInvalidation:
    def test_schema_bump_changes_fingerprint_and_resume_key(
        self, home, monkeypatch
    ):
        workload, environment = home
        args = ("Home", "tiny", "swv", 8, "clank", SETUP, environment)
        before_fp = config_fingerprint(*args)
        before_key = _resume_key(*args)
        monkeypatch.setattr(cas, "RESULT_SCHEMA_VERSION", 999)
        assert code_schema_tag().endswith("/999")
        assert config_fingerprint(*args) != before_fp
        assert _resume_key(*args) != before_key

    def test_schema_bump_forces_recompute(self, home, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        warm = run_once(home)
        monkeypatch.setattr(cas, "RESULT_SCHEMA_VERSION", 999)
        executed = []
        real = common._map_samples

        def counting(specs, jobs):
            executed.append(len(specs))
            return real(specs, jobs)

        monkeypatch.setattr(common, "_map_samples", counting)
        recomputed = run_once(home)
        # The old entry is unreachable under the bumped schema: the grid
        # really re-executed, and (determinism) matched the warm result.
        assert executed == [SETUP.trace_count * SETUP.invocations]
        assert full_dicts([recomputed]) == full_dicts([warm])


class TestRobustness:
    def entry_path(self, home, root):
        workload, environment = home
        fingerprint = config_fingerprint(
            "Home", "tiny", "swv", 8, "clank", SETUP, environment
        )
        return ResultStore(str(root)).path_for(fingerprint)

    @pytest.mark.parametrize(
        "corrupt",
        [
            b"",  # truncated to nothing
            b'{"schema": 1, "fingerprint": "wrong", "runs"',  # torn write
            b'{"schema": 0, "runs": []}',  # foreign/stale schema
            b"not json at all",
        ],
    )
    def test_torn_entry_recomputes_and_heals(
        self, home, tmp_path, monkeypatch, corrupt
    ):
        root = tmp_path / "store"
        monkeypatch.setenv("REPRO_STORE", str(root))
        pristine = run_once(home)
        path = self.entry_path(home, root)
        path.write_bytes(corrupt)
        healed = run_once(home)  # defect = miss: recompute + overwrite
        assert full_dicts([healed]) == full_dicts([pristine])
        assert json.loads(path.read_text())["runs"]  # entry is whole again

    def test_concurrent_same_key_writers_never_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        fingerprint = "ab" * 32
        payload = cas.result_payload(fingerprint, {"workload": "X"}, [{"n": 1}])
        errors = []

        def writer():
            try:
                for _ in range(20):
                    store.put(fingerprint, payload)
            except Exception as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.load(fingerprint) == payload
        # No temp litter: every writer's file was renamed or is its own.
        assert not list((tmp_path / "store").glob("*/.*.tmp"))


class TestGridRecordsOnce:
    def test_engine_passes_never_re_record(self, monkeypatch):
        import repro.benchmarking as benchmarking
        import repro.sim.replay as replay

        record_calls = []
        engine_calls = []
        real = replay.record_run

        def counted(kernel, inputs):
            record_calls.append(1)
            return real(kernel, inputs)

        def forbidden(kernel, inputs):  # pragma: no cover - the failure case
            engine_calls.append(1)
            return real(kernel, inputs)

        monkeypatch.setattr(replay, "record_run", counted)
        monkeypatch.setattr(common, "record_run", forbidden)
        payload = benchmarking.run_grid_bench(reps=1, scale="tiny")
        # One cold rebuild per rep per config (the timed record phase);
        # the replay/batch/store passes all reuse those warm logs.
        assert len(record_calls) == 1 * 3
        assert not engine_calls
        assert payload["grid"]["identical"]
        assert payload["grid"]["store_speedup"] > 1.0


class TestLiveReport:
    def test_dashboard_renders_store_section(self, home, tmp_path, monkeypatch):
        root = tmp_path / "store"
        monkeypatch.setenv("REPRO_STORE", str(root))
        run_once(home)
        data = load_report_data(store=str(root))
        assert len(data.store_rows) == 1
        assert data.store_stats["entries"] == 1
        text = render_report(data)
        assert "Result store" in text
        assert "Home/swv8/clank" in text
