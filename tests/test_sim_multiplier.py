"""Unit and property tests for the anytime multiplier."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import MemoTable, Multiplier

MASK32 = 0xFFFFFFFF


class TestFullMultiply:
    def test_product(self):
        mul = Multiplier()
        result, cycles = mul.mul(123, 456)
        assert result == 123 * 456
        assert cycles == 16

    def test_wraps_mod_2_32(self):
        mul = Multiplier()
        result, _ = mul.mul(0xFFFF, 0xFFFF0)
        assert result == (0xFFFF * 0xFFFF0) & MASK32

    def test_stats_accumulate(self):
        mul = Multiplier()
        mul.mul(2, 3)
        mul.mul(4, 5)
        assert mul.mul_count == 2
        assert mul.total_mul_cycles == 32
        mul.reset_stats()
        assert mul.mul_count == 0


class TestAnytimeSubwordMultiply:
    def test_single_subword(self):
        mul = Multiplier()
        result, cycles = mul.mul_asp(100, 0x12, width=8, position=0)
        assert result == 100 * 0x12
        assert cycles == 8

    def test_position_shifts_partial_product(self):
        mul = Multiplier()
        result, _ = mul.mul_asp(100, 0x12, width=8, position=1)
        assert result == (100 * 0x12) << 8

    def test_subword_masked_to_width(self):
        mul = Multiplier()
        result, _ = mul.mul_asp(10, 0x1FF, width=8, position=0)
        assert result == 10 * 0xFF

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 8])
    def test_cycle_cost_equals_width(self, width):
        mul = Multiplier()
        _, cycles = mul.mul_asp(7, 1, width=width, position=0)
        assert cycles == width

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Multiplier().mul_asp(1, 1, width=0, position=0)

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_subword_accumulation_reconstructs_full_product(self, a, b):
        """Distributivity: summing shifted subword products == full product."""
        mul = Multiplier()
        for width in (1, 2, 4, 8):
            total = 0
            for pos in range(16 // width):
                sub = (b >> (width * pos)) & ((1 << width) - 1)
                partial, _ = mul.mul_asp(a, sub, width=width, position=pos)
                total = (total + partial) & MASK32
            assert total == (a * b) & MASK32

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_msb_first_partial_sums_converge(self, a, b):
        """Processing most significant subwords first converges monotonically
        in the sense that each prefix is a lower bound of the full product."""
        mul = Multiplier()
        width = 4
        total = 0
        previous_error = (a * b) & MASK32
        for pos in reversed(range(16 // width)):
            sub = (b >> (width * pos)) & ((1 << width) - 1)
            partial, _ = mul.mul_asp(a, sub, width=width, position=pos)
            total = (total + partial) & MASK32
            error = abs((a * b) - total)
            assert error <= previous_error
            previous_error = error
        assert total == (a * b) & MASK32


class TestZeroSkipping:
    def test_zero_operand_short_circuits(self):
        mul = Multiplier(zero_skipping=True)
        result, cycles = mul.mul(0, 999)
        assert result == 0
        assert cycles == 1
        result, cycles = mul.mul(999, 0)
        assert cycles == 1

    def test_disabled_by_default(self):
        mul = Multiplier()
        _, cycles = mul.mul(0, 999)
        assert cycles == 16

    def test_applies_to_subword_multiply(self):
        mul = Multiplier(zero_skipping=True)
        _, cycles = mul.mul_asp(5, 0, width=8, position=1)
        assert cycles == 1


class TestMemoization:
    def test_hit_after_insert(self):
        mul = Multiplier(memo_table=MemoTable())
        r1, c1 = mul.mul(123, 45)
        r2, c2 = mul.mul(123, 45)
        assert r1 == r2 == 123 * 45
        assert c1 == 16
        assert c2 == 1

    def test_memo_never_changes_results(self):
        mul = Multiplier(memo_table=MemoTable())
        plain = Multiplier()
        pairs = [(3, 9), (3, 9), (7, 7), (3, 9), (12, 300), (7, 7)]
        for a, b in pairs:
            assert mul.mul(a, b)[0] == plain.mul(a, b)[0]

    def test_memo_applies_shift_after_lookup(self):
        mul = Multiplier(memo_table=MemoTable())
        mul.mul_asp(10, 3, width=8, position=0)
        result, cycles = mul.mul_asp(10, 3, width=8, position=1)
        assert result == (10 * 3) << 8
        assert cycles == 1

    def test_zero_products_not_inserted(self):
        table = MemoTable()
        mul = Multiplier(memo_table=table)
        mul.mul(0, 5)
        assert table.lookup(0, 5) is None

    def test_conflicting_entries_evict(self):
        table = MemoTable(entries=16)
        mul = Multiplier(memo_table=table)
        # Same low bits, different tags -> same set, eviction.
        mul.mul(4, 4)
        mul.mul(8, 8)
        _, cycles = mul.mul(4, 4)
        assert cycles == 16  # evicted, recomputed correctly

    def test_hit_rate(self):
        table = MemoTable()
        mul = Multiplier(memo_table=table)
        mul.mul(9, 9)
        mul.mul(9, 9)
        mul.mul(9, 9)
        assert table.hits == 2
        assert table.misses == 1
        assert table.hit_rate == pytest.approx(2 / 3)

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MemoTable(entries=10)
        with pytest.raises(ValueError):
            MemoTable(entries=0)

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)), max_size=50))
    def test_memoized_results_match_plain_property(self, pairs):
        memo = Multiplier(memo_table=MemoTable(), zero_skipping=True)
        plain = Multiplier()
        for a, b in pairs:
            assert memo.mul(a, b)[0] == plain.mul(a, b)[0]
