"""Property tests for the power substrate and executor accounting."""

from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.power import (
    Capacitor,
    EnergyModel,
    PowerSupply,
    constant_trace,
    square_trace,
    wifi_trace,
)
from repro.runtime import ClankRuntime, IntermittentExecutor, NVPRuntime
from repro.sim import CPU, default_memory


class TestCapacitorProperties:
    @given(
        st.floats(0.0, 4.5),
        st.lists(st.floats(0, 1e-5, allow_nan=False), max_size=30),
    )
    def test_energy_never_negative_and_bounded(self, v0, events):
        cap = Capacitor(v_initial=v0)
        e_max = cap.energy_at(cap.v_max)
        for i, amount in enumerate(events):
            if i % 2:
                cap.draw(amount)
            else:
                cap.harvest(amount)
            assert 0.0 <= cap.energy <= e_max + 1e-18
            assert 0.0 <= cap.voltage <= cap.v_max + 1e-9

    @given(st.floats(0.0, 4.4))
    def test_voltage_energy_inverse(self, voltage):
        cap = Capacitor()
        cap.set_voltage(voltage)
        assert abs(cap.voltage - voltage) < 1e-9

    @given(st.floats(0, 1e-5), st.floats(0, 1e-5))
    def test_harvest_draw_order_conserves(self, gain, cost):
        """Harvest then draw == draw then harvest when neither clamps."""
        a = Capacitor(v_initial=2.5)
        b = Capacitor(v_initial=2.5)
        a.harvest(gain)
        a.draw(cost)
        b.draw(cost)
        b.harvest(gain)
        if 0 < a.energy < a.energy_at(a.v_max) and 0 < b.energy < b.energy_at(b.v_max):
            assert abs(a.energy - b.energy) < 1e-15


class TestSupplyProperties:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 5), st.integers(1, 30))
    def test_supply_accounting_invariants(self, seed, ticks):
        supply = PowerSupply(
            wifi_trace(duration_ms=500, seed=seed),
            Capacitor(capacitance_f=0.1e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        for _ in range(ticks):
            supply.charge_until_on()
            budget = supply.begin_tick()
            assert 0 <= budget <= supply.energy.cycles_per_ms
            supply.consume_cycles(budget)
            supply.finish_tick()
        assert supply.total_on_ms + supply.total_off_ms <= supply.tick
        assert supply.total_cycles >= 0

    def test_energy_limited_tick_browns_out(self):
        supply = PowerSupply(
            constant_trace(0.0, 10),
            Capacitor(capacitance_f=0.05e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        supply.charge_until_on()
        budget = supply.begin_tick()
        assert supply.tick_energy_limited
        supply.consume_cycles(budget)
        assert supply.finish_tick() is False


class TestExecutorAccounting:
    def make_executor(self, runtime, seed=0):
        source = """
        .equ OUT, 0x8000
            MOV R0, #0
        LOOP:
            ADD R0, R0, #1
            CMP R0, #30000
            BLT LOOP
            MOV R1, #OUT
            STR R0, [R1, #0]
            HALT
        """
        cpu = CPU(assemble(source), default_memory())
        supply = PowerSupply(
            wifi_trace(duration_ms=4000, seed=seed),
            Capacitor(capacitance_f=0.05e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        return IntermittentExecutor(cpu, supply, runtime)

    def test_wall_equals_on_plus_off(self):
        result = self.make_executor(NVPRuntime()).run()
        assert result.completed
        assert result.wall_ms == result.on_ms + result.off_ms

    def test_active_cycles_bounded_by_on_time(self):
        result = self.make_executor(NVPRuntime(), seed=1).run()
        assert result.active_cycles <= result.on_ms * 24_000

    def test_clank_reexecutes_more_than_nvp(self):
        clank = self.make_executor(ClankRuntime(watchdog_cycles=400), seed=2).run()
        nvp = self.make_executor(NVPRuntime(), seed=2).run()
        assert clank.completed and nvp.completed
        assert clank.active_cycles >= nvp.active_cycles

    def test_outage_count_matches_restores(self):
        runtime = NVPRuntime()
        result = self.make_executor(runtime, seed=3).run()
        # One restore per power-on: the initial boot adds one, and an
        # outage in the same tick the program halts has no restore.
        assert result.outages <= runtime.stats.restores <= result.outages + 1
