"""Round-trip tests for the binary instruction encoding."""

from hypothesis import given, strategies as st

from repro.isa import (
    RECORD_SIZE,
    Instruction,
    assemble,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.encoding import OPCODES

import pytest


SAMPLE_SOURCE = """
.equ N, 16
START:
    MOV  R0, #0x100
    MOV  R1, #0
LOOP:
    LDR  R2, [R0, R1]
    MUL_ASP4 R2, R3, #2
    ADD_ASV8 R2, R4
    STR  R2, [R0, R1]
    ADD  R1, R1, #4
    CMP  R1, #N
    BLT  LOOP
    SKM  DONE
DONE:
    HALT
"""


class TestInstructionEncoding:
    def test_record_size_fixed(self):
        instr = Instruction("NOP")
        assert len(encode_instruction(instr)) == RECORD_SIZE

    def test_simple_roundtrip(self):
        instr = Instruction("ADD", rd=1, rn=2, rm=3)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_immediate_roundtrip(self):
        instr = Instruction("MOV", rd=1, imm=-5 & 0xFFFF)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_zero_immediate_distinct_from_absent(self):
        with_imm = Instruction("LDR", rd=0, rn=1, imm=0)
        decoded = decode_instruction(encode_instruction(with_imm))
        assert decoded.imm == 0

    def test_label_roundtrip_with_label_map(self):
        instr = Instruction("B", label="LOOP", target=7)
        decoded = decode_instruction(encode_instruction(instr), labels={7: "LOOP"})
        assert decoded == instr
        assert decoded.target == 7

    def test_unresolved_label_rejected(self):
        with pytest.raises(ValueError):
            encode_instruction(Instruction("B", label="LOOP"))

    def test_opcode_numbering_is_stable(self):
        assert OPCODES == {op: i for i, op in enumerate(sorted(OPCODES))}


class TestProgramEncoding:
    def test_program_roundtrip(self):
        program = assemble(SAMPLE_SOURCE)
        blob = encode_program(program)
        assert len(blob) == RECORD_SIZE * len(program)
        decoded = decode_program(blob, labels=program.labels)
        assert list(decoded) == list(program)

    def test_truncated_blob_rejected(self):
        program = assemble("NOP\nHALT")
        blob = encode_program(program)
        with pytest.raises(ValueError):
            decode_program(blob[:-1])


@st.composite
def instructions(draw):
    """Generate arbitrary well-formed three-register instructions."""
    op = draw(st.sampled_from(["ADD", "SUB", "AND", "ORR", "EOR", "LSL", "MUL"]))
    rd = draw(st.integers(0, 15))
    rn = draw(st.integers(0, 15))
    use_imm = draw(st.booleans())
    if use_imm and op != "MUL":
        return Instruction(op, rd=rd, rn=rn, imm=draw(st.integers(0, 2**20)))
    return Instruction(op, rd=rd, rn=rn, rm=draw(st.integers(0, 15)))


class TestEncodingProperties:
    @given(instructions())
    def test_roundtrip_property(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 3))
    def test_asp_roundtrip_property(self, rd, rm, pos):
        instr = Instruction("MUL_ASP4", rd=rd, rn=rd, rm=rm, imm=pos)
        assert decode_instruction(encode_instruction(instr)) == instr
