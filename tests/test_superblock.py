"""Superinstruction fusion must be invisible except for speed.

``REPRO_SUPERBLOCK`` gates the fused dispatch tables at CPU
construction / record start, so the same program can run both ways and
every observable — cycles, retired count, architectural state, memory,
budget boundaries, instruction-limit faults, and the recorder's commit
log — is compared field by field.
"""

import pytest

from repro.experiments.common import build_anytime
from repro.isa import assemble
from repro.sim import CPU, default_memory
from repro.sim.cpu import CpuFault
from repro.sim.replay import record_run
from repro.sim.superblock import (
    MIN_DISPATCH_SPAN,
    MIN_RECORD_SPAN,
    span_table,
    superblock_enabled,
)
from repro.workloads import make_workload


def _pair(source, monkeypatch):
    """(fused, unfused) CPUs on the same program text."""
    program = assemble(source)
    monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
    fused = CPU(program, default_memory())
    monkeypatch.setenv("REPRO_SUPERBLOCK", "0")
    plain = CPU(assemble(source), default_memory())
    return fused, plain


def _state(cpu):
    return (
        cpu.pc,
        cpu.halted,
        list(cpu.regs),
        [bytes(r.data) for r in cpu.memory.regions if r.device is None],
    )


STRAIGHT_THEN_LOOP = """
    MOV R1, #0
    MOV R2, #10
loop:
    ADD R1, R1, #3
    SUB R3, R1, #1
    AND R4, R1, R3
    ORR R5, R4, #1
    SUB R2, R2, #1
    CMP R2, #0
    BNE loop
    HALT
"""


class TestSpanTable:
    def test_spans_respect_minimums_and_control_flow(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
        cpu = CPU(assemble(STRAIGHT_THEN_LOOP), default_memory())
        table = span_table(cpu.program, cpu._metas)
        metas = cpu._metas
        for pc, length in enumerate(table.dispatch):
            if length == 0:
                continue
            assert length >= MIN_DISPATCH_SPAN
            # every member but the last is straight-line
            for j in range(length - 1):
                m = metas[pc + j]
                assert not m.is_branch and m.op != "HALT"
        for pc, span in enumerate(table.record):
            if span is None:
                continue
            blen, prefix, load_flags, total = span
            assert blen >= MIN_RECORD_SPAN
            assert len(prefix) == blen == len(load_flags)
            assert prefix[-1] == total
            for j in range(blen):
                m = metas[pc + j]
                assert m.cost > 0 and not m.is_branch and not m.is_store
                assert m.op not in ("SKM", "HALT")

    def test_env_flag_disables_fusion(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERBLOCK", "0")
        assert not superblock_enabled()
        cpu = CPU(assemble(STRAIGHT_THEN_LOOP), default_memory())
        assert cpu._superblocks is None
        monkeypatch.delenv("REPRO_SUPERBLOCK")
        assert superblock_enabled()


class TestFusedDispatch:
    def test_run_matches_unfused(self, monkeypatch):
        fused, plain = _pair(STRAIGHT_THEN_LOOP, monkeypatch)
        assert fused._superblocks is not None
        assert fused.run() == plain.run()
        assert _state(fused) == _state(plain)

    def test_run_workload_kernel_matches(self, monkeypatch):
        workload = make_workload("MatMul", "tiny")
        kernel = build_anytime(workload, workload.technique, 8)
        monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
        with_blocks = kernel.run(workload.inputs)
        monkeypatch.setenv("REPRO_SUPERBLOCK", "0")
        without = kernel.run(workload.inputs)
        assert with_blocks.cycles == without.cycles
        assert with_blocks.outputs == without.outputs

    def test_run_cycles_chunked_matches(self, monkeypatch):
        import random

        rng = random.Random(5)
        fused, plain = _pair(STRAIGHT_THEN_LOOP, monkeypatch)
        while not (fused.halted and plain.halted):
            budget = rng.randrange(0, 7)
            assert fused.run_cycles(budget) == plain.run_cycles(budget)
            assert _state(fused) == _state(plain)

    def test_exact_fit_boundary_matches(self, monkeypatch):
        # The fused block only commits when its whole worst-case sum
        # fits; the budget boundary must land identically either way.
        for budget in range(0, 20):
            fused, plain = _pair(STRAIGHT_THEN_LOOP, monkeypatch)
            assert fused.run_cycles(budget) == plain.run_cycles(budget)
            assert _state(fused) == _state(plain)

    def test_instruction_limit_boundary_matches(self, monkeypatch):
        # Limits that land mid-block, at block edges, and past HALT all
        # fault (or not) exactly like the scalar loop.
        for limit in list(range(0, 12)) + [80, 81, 82, 83, 200]:
            fused, plain = _pair(STRAIGHT_THEN_LOOP, monkeypatch)
            fused_fault = plain_fault = None
            try:
                fused_cycles = fused.run(max_instructions=limit)
            except CpuFault as exc:
                fused_fault = str(exc)
            try:
                plain_cycles = plain.run(max_instructions=limit)
            except CpuFault as exc:
                plain_fault = str(exc)
            assert fused_fault == plain_fault, limit
            if fused_fault is None:
                assert fused_cycles == plain_cycles
            assert _state(fused) == _state(plain)


class TestRecorderBulkPath:
    @pytest.mark.parametrize("workload_name", ["MatMul", "Var"])
    def test_record_identical_with_and_without_fusion(
        self, monkeypatch, workload_name
    ):
        workload = make_workload(workload_name, "tiny")
        kernel = build_anytime(workload, workload.technique, 8)
        monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
        bulk = record_run(kernel, workload.inputs)
        monkeypatch.setenv("REPRO_SUPERBLOCK", "0")
        scalar = record_run(kernel, workload.inputs)

        fields = [
            name
            for name in type(bulk).__slots__
            if not name.startswith("_") and name != "batch"
        ]
        for name in fields:
            assert getattr(bulk, name) == getattr(scalar, name), name
