"""Unit and property tests for the subword-vectorized adder."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import NUM_MUXES, SubwordAdder
from repro.sim.adder import MUX_POSITIONS

MASK32 = 0xFFFFFFFF
u32 = st.integers(0, MASK32)


class TestFullWidthAdd:
    def test_simple_add(self):
        adder = SubwordAdder()
        result, carry, overflow = adder.add32(2, 3)
        assert (result, carry, overflow) == (5, False, False)

    def test_carry_out(self):
        adder = SubwordAdder()
        result, carry, _ = adder.add32(MASK32, 1)
        assert result == 0
        assert carry is True

    def test_signed_overflow(self):
        adder = SubwordAdder()
        _, _, overflow = adder.add32(0x7FFFFFFF, 1)
        assert overflow is True

    def test_subtract(self):
        adder = SubwordAdder()
        result, carry, overflow = adder.sub32(10, 3)
        assert result == 7
        assert carry is True  # no borrow
        assert overflow is False

    def test_subtract_borrow(self):
        adder = SubwordAdder()
        result, carry, _ = adder.sub32(3, 10)
        assert result == (3 - 10) & MASK32
        assert carry is False  # borrow occurred

    @given(u32, u32)
    def test_add_matches_modular_arithmetic(self, a, b):
        adder = SubwordAdder()
        result, carry, _ = adder.add32(a, b)
        assert result == (a + b) & MASK32
        assert carry == (a + b > MASK32)

    @given(u32, u32)
    def test_sub_matches_modular_arithmetic(self, a, b):
        adder = SubwordAdder()
        result, _, _ = adder.sub32(a, b)
        assert result == (a - b) & MASK32


class TestVectorAdd:
    def test_lanes_independent_8bit(self):
        adder = SubwordAdder()
        # 0xFF + 0x01 in lane 0 must not carry into lane 1.
        result = adder.add_vector(0x000000FF, 0x00000001, 8)
        assert result == 0x00000000

    def test_four_parallel_8bit_adds(self):
        adder = SubwordAdder()
        a = 0x01020304
        b = 0x10203040
        assert adder.add_vector(a, b, 8) == 0x11223344

    def test_eight_parallel_4bit_adds(self):
        adder = SubwordAdder()
        a = 0x11111111
        b = 0x22222222
        assert adder.add_vector(a, b, 4) == 0x33333333

    def test_4bit_lane_wraps(self):
        adder = SubwordAdder()
        assert adder.add_vector(0x0000000F, 0x00000001, 4) == 0

    def test_two_parallel_16bit_adds(self):
        adder = SubwordAdder()
        assert adder.add_vector(0x0001FFFF, 0x00010001, 16) == 0x00020000

    def test_vector_sub(self):
        adder = SubwordAdder()
        assert adder.sub_vector(0x05050505, 0x01010101, 8) == 0x04040404

    def test_vector_sub_wraps_per_lane(self):
        adder = SubwordAdder()
        assert adder.sub_vector(0x00000000, 0x00000001, 8) == 0x000000FF

    def test_unsupported_lane_width_rejected(self):
        adder = SubwordAdder()
        with pytest.raises(ValueError):
            adder.add_vector(1, 2, 5)
        with pytest.raises(ValueError):
            adder.add_vector(1, 2, 32)

    @given(u32, u32, st.sampled_from([4, 8, 16]))
    def test_vector_add_equals_per_lane_scalar_add(self, a, b, lane):
        adder = SubwordAdder()
        result = adder.add_vector(a, b, lane)
        mask = (1 << lane) - 1
        for shift in range(0, 32, lane):
            expected = (((a >> shift) & mask) + ((b >> shift) & mask)) & mask
            assert (result >> shift) & mask == expected

    @given(u32, u32, st.sampled_from([4, 8, 16]))
    def test_vector_sub_equals_per_lane_scalar_sub(self, a, b, lane):
        adder = SubwordAdder()
        result = adder.sub_vector(a, b, lane)
        mask = (1 << lane) - 1
        for shift in range(0, 32, lane):
            expected = (((a >> shift) & mask) - ((b >> shift) & mask)) & mask
            assert (result >> shift) & mask == expected

    @given(u32, u32)
    def test_vector_add_commutative(self, a, b):
        adder = SubwordAdder()
        assert adder.add_vector(a, b, 8) == adder.add_vector(b, a, 8)


class TestLaneHelpers:
    def test_lanes_split(self):
        adder = SubwordAdder()
        assert adder.lanes(0x11223344, 8) == [0x44, 0x33, 0x22, 0x11]

    @given(u32, st.sampled_from([4, 8, 16]))
    def test_lanes_pack_roundtrip(self, value, lane):
        adder = SubwordAdder()
        assert SubwordAdder.pack_lanes(adder.lanes(value, lane), lane) == value


class TestHardwareModel:
    def test_mux_every_four_bits(self):
        assert MUX_POSITIONS == (4, 8, 12, 16, 20, 24, 28)
        assert NUM_MUXES == 7
