"""The async experiment service:

* one submission streams ``ack`` -> ``progressive`` (a usable level-k
  answer) -> ``result``, and the final runs match a direct
  :func:`~repro.experiments.common.run_benchmark` field for field;
* concurrent clients submitting overlapping grids pay for each distinct
  configuration exactly once (in-flight dedup + store);
* a resubmitted configuration is a pure store hit;
* bad jobs come back as typed errors, not dead connections;
* the ``serve``/``submit``/``report --live`` CLI round-trips.
"""

import asyncio
import json
import threading

import pytest

from repro.__main__ import main
from repro.experiments.common import (
    ExperimentSetup,
    _sample_run_to_dict,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
)
from repro.service import ExperimentService, JobSpec, ServiceClient, ServiceError
from repro.workloads import make_workload

GRID = {"scale": "tiny", "trace_count": 3, "invocations": 2,
        "trace_duration_ms": 800}


def job(workload="Home", mode="swv", bits=8, runtime="clank"):
    return {"workload": workload, "mode": mode, "bits": bits,
            "runtime": runtime, **GRID}


class running_service:
    """Context manager: one service on a fresh unix socket, own thread."""

    def __init__(self, tmp_path, store=True):
        self.socket_path = str(tmp_path / "svc.sock")
        self.service = ExperimentService(
            store_dir=str(tmp_path / "store") if store else None
        )
        self.ready = threading.Event()

    def __enter__(self):
        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                self.service.serve(
                    socket_path=self.socket_path,
                    on_ready=lambda _: self.ready.set(),
                )
            ),
            daemon=True,
        )
        self.thread.start()
        assert self.ready.wait(10), "service never came up"
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient.connect(self.socket_path, timeout=5) as client:
                client.shutdown()
        except OSError:
            pass
        self.thread.join(10)

    def client(self):
        return ServiceClient.connect(self.socket_path, timeout=10)


@pytest.fixture()
def direct_runs(monkeypatch):
    """Ground truth: the same grid run directly, full sample dicts.

    On the batch engine, like the service computes — sample fields are
    engine-identical by contract, but the metrics rollups *record*
    which engine ran, so a field-for-field comparison must match it."""
    monkeypatch.setenv("REPRO_BATCH", "1")
    setup = ExperimentSetup(**GRID)
    workload = make_workload("Home", "tiny")
    environment = calibrate_environment(measure_precise_cycles(workload), setup)
    result = run_benchmark(workload, "swv", 8, "clank", setup, environment)
    return [_sample_run_to_dict(run) for run in result.runs]


class TestSingleSubmission:
    def test_progressive_before_final_and_matches_direct(
        self, tmp_path, direct_runs
    ):
        events = []
        with running_service(tmp_path) as svc, svc.client() as client:
            result = client.submit(job(), full=True, on_event=events.append)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "ack"
        assert "progressive" in kinds
        assert kinds.index("progressive") < kinds.index("result")
        level_k = events[kinds.index("progressive")]
        assert level_k["stage"] == "level-k"
        assert level_k["samples_done"] == 1
        assert level_k["samples_total"] == 6
        # The anytime preview is the grid's real first sample.
        assert level_k["sample"]["wall_ms"] == direct_runs[0]["wall_ms"]
        assert level_k["sample"]["error"] == direct_runs[0]["error"]
        assert result["source"] == "computed"
        assert result["runs"] == direct_runs

    def test_resubmission_is_pure_store_hit(self, tmp_path):
        with running_service(tmp_path) as svc:
            with svc.client() as client:
                first = client.submit(job(), full=True)
            events = []
            with svc.client() as client:
                second = client.submit(job(), full=True,
                                       on_event=events.append)
                stats = client.stats()
            assert events[0]["cached"] is True
            assert second["source"] == "store"
            assert second["runs"] == first["runs"]
            assert stats["computed"] == 1
            assert stats["store_hits"] == 1

    def test_bad_jobs_are_typed_errors(self, tmp_path):
        with running_service(tmp_path) as svc, svc.client() as client:
            with pytest.raises(ServiceError, match="unknown workload"):
                client.submit(job(workload="NoSuch"))
            with pytest.raises(ServiceError, match="invalid bits"):
                client.submit(job(bits=7))
            # The connection survives errors: a good job still works.
            assert client.ping()["protocol"] == 1
            assert client.submit(job())["source"] in ("computed", "store")


class TestConcurrentClients:
    def test_overlapping_grids_compute_each_config_once(self, tmp_path):
        # 4 clients x 3 configs, all overlapping: 3 distinct fingerprints.
        configs = [job(mode="precise", bits=None), job(bits=8), job(bits=4)]
        results = {}
        errors = []

        def one_client(n, svc):
            try:
                with svc.client() as client:
                    results[n] = [
                        client.submit(spec, full=True) for spec in configs
                    ]
            except Exception as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        with running_service(tmp_path) as svc:
            threads = [
                threading.Thread(target=one_client, args=(n, svc))
                for n in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            with svc.client() as client:
                stats = client.stats()
        assert not errors
        assert len(results) == 4
        # Every client got every config, and they all agree exactly.
        for n in range(1, 4):
            assert [r["runs"] for r in results[n]] == \
                [r["runs"] for r in results[0]]
        # Dedup did its job: 12 submissions, 3 computations.
        assert stats["submissions"] == 12
        assert stats["computed"] == len(configs)
        assert stats["store_hits"] + stats["inflight_dedups"] == 12 - len(configs)
        assert stats["errors"] == 0
        assert stats["store"]["entries"] == len(configs)


class TestJobSpec:
    def test_round_trip_ignores_unknown_keys(self):
        spec = JobSpec.from_dict({**job(), "future_knob": True})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_needs_workload_and_mode(self):
        with pytest.raises(ValueError, match="workload"):
            JobSpec.from_dict({"mode": "swv"})
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "dict"])


class TestCLI:
    def test_submit_and_live_report(self, tmp_path, capsys, monkeypatch):
        with running_service(tmp_path) as svc:
            code = main([
                "submit", "Home", "--mode", "swv", "--scale", "tiny",
                "--traces", "3", "--invocations", "2",
                "--socket", svc.socket_path,
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "level-k: first answer after 1/6 samples" in out
            assert "result [computed] Home/swv8/clank: 6 samples" in out

            code = main([
                "submit", "Home", "--mode", "swv", "--scale", "tiny",
                "--traces", "3", "--invocations", "2",
                "--socket", svc.socket_path, "--json",
            ])
            payload = json.loads(capsys.readouterr().out)
            assert code == 0
            assert payload["source"] == "store"

        code = main([
            "report", "--store", str(tmp_path / "store"),
            "--history", str(tmp_path / "none.jsonl"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Result store" in out
        assert "Home/swv" in out

    def test_live_without_store_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["report", "--live"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err
