"""Golden-value regression tests for the tiny-scale workloads.

Pins exact decoded outputs for the fixed default seeds: any change to
the data generators, kernel definitions, fixed-point decode paths or
the interpreter that alters results will trip these, separating
intentional re-baselining from accidental numeric drift.
"""

import pytest

from repro.compiler import evaluate
from repro.workloads import make_workload

GOLDENS = {
    "Conv2d": {"first3": [115.893494, 138.974304, 151.08522], "sum": 4325.4026, "len": 36},
    "MatMul": {"first3": [1163911399.0, 747167181.0, 956774518.0], "sum": 39757849633.0, "len": 36},
    "MatAdd": {"first3": [1776573651.0, 400597336.0, 338748944.0], "sum": 69337091468.0, "len": 64},
    "Home": {"first3": [223.25, 256.75, 277.75], "sum": 1752.5, "len": 8},
    "Var": {"first3": [247485.0, 1219593.0], "sum": 1467078.0, "len": 2},
    "NetMotion": {"first3": [162.208008], "sum": 162.208, "len": 1},
}


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_decoded_outputs_match_goldens(name):
    workload = make_workload(name, "tiny")
    result = evaluate(workload.kernel, workload.inputs)
    outputs = {a.name: result[a.name] for a in workload.kernel.outputs()}
    decoded = workload.decode(outputs)
    golden = GOLDENS[name]
    assert len(decoded) == golden["len"]
    for got, expected in zip(decoded, golden["first3"]):
        assert got == pytest.approx(expected, abs=1e-4)
    assert sum(decoded) == pytest.approx(golden["sum"], abs=1e-2)


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_compiled_precise_build_matches_goldens(name):
    """The machine-code path reproduces the same goldens bit-for-bit."""
    from repro.core import AnytimeKernel

    workload = make_workload(name, "tiny")
    run = AnytimeKernel(workload.kernel).run(workload.inputs)
    decoded = workload.decode(run.outputs)
    golden = GOLDENS[name]
    for got, expected in zip(decoded, golden["first3"]):
        assert got == pytest.approx(expected, abs=1e-4)
