"""The lane-parallel batched replay backend must be bit-exact.

``REPRO_BATCH=1`` walks each configuration's commit log once for all
its (trace, invocation) samples. Everything observable must match the
per-sample engines: SampleRun fields vs the interpreter (the repo's
differential bar), metrics and ledger buckets *exactly* vs the replay
engine (which shares its overhead classification), byte-identical
results between serial and ``REPRO_JOBS`` runs, and identical output
with and without numpy. The vector kernels (WAR oracle, lane advance,
charge fast-forward) are additionally checked one-to-one against the
scalar code they replace.
"""

import pytest

from repro.experiments.common import (
    ExperimentSetup,
    _worker_records,
    build_anytime,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
    run_benchmark_suite,
)
from repro.power.capacitor import Capacitor
from repro.power.energy import EnergyModel
from repro.power.supply import PowerSupply, SupplyExhausted
from repro.power.trace import PowerTrace
from repro.sim.batch_replay import (
    advance_lanes,
    build_batch_index,
    charge_until_on_fast,
    numpy_or_none,
    trace_energy_array,
)
from repro.sim.replay import record_run
from repro.workloads import make_workload

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy not available"
)


def _setup():
    return ExperimentSetup(scale="tiny")


def _environment(workload, setup):
    return calibrate_environment(measure_precise_cycles(workload), setup)


def _serial_env(monkeypatch):
    for key in ("REPRO_JOBS", "REPRO_REPLAY", "REPRO_BATCH",
                "REPRO_BATCH_NUMPY"):
        monkeypatch.delenv(key, raising=False)


def _grid_runs(workload, configs, runtime, setup, environment, reference):
    results = run_benchmark_suite(
        workload, configs, runtime, setup, environment, reference
    )
    return [run for result in results for run in result.runs]


def _rollups(runs):
    """(counters-sans-engine, observations, ledger) per sample — the
    strict comparison the replay and batch engines must share."""
    out = []
    for run in runs:
        counters = {
            k: v
            for k, v in (run.metrics or {}).get("counters", {}).items()
            if not k.startswith("engine.")
        }
        out.append(
            (counters, (run.metrics or {}).get("observations"), run.ledger)
        )
    return out


class TestGridDifferential:
    def test_fig10_grid_batch_identical(self, monkeypatch):
        """Full Figure-10 MatMul grid: batch == interpreter, and every
        sample actually ran on the batch engine (no silent demotion)."""
        _serial_env(monkeypatch)
        setup = _setup()
        workload = make_workload("MatMul", setup.scale)
        environment = _environment(workload, setup)
        reference = workload.decoded_reference()
        configs = [
            ("precise", None), (workload.technique, 8), (workload.technique, 4)
        ]

        interp = _grid_runs(workload, configs, "clank", setup, environment, reference)
        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        batch = _grid_runs(workload, configs, "clank", setup, environment, reference)

        assert len(interp) == 3 * setup.trace_count * setup.invocations
        assert batch == interp  # SampleRun dataclass: field-by-field equality
        batched = sum(
            (run.metrics or {}).get("counters", {}).get("engine.batch", 0)
            for run in batch
        )
        assert batched == len(batch), "some samples demoted off the batch path"

    @pytest.mark.parametrize("workload_name", ["MatMul", "Var"])
    @pytest.mark.parametrize("runtime", ["clank", "nvp", "hibernus"])
    def test_runtime_grid_batch_identical(
        self, monkeypatch, workload_name, runtime
    ):
        """Every runtime policy batches exactly, on two workloads."""
        _serial_env(monkeypatch)
        setup = _setup()
        workload = make_workload(workload_name, setup.scale)
        environment = _environment(workload, setup)
        reference = workload.decoded_reference()

        interp = run_benchmark(
            workload, workload.technique, 8, runtime, setup, environment, reference
        )
        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        batch = run_benchmark(
            workload, workload.technique, 8, runtime, setup, environment, reference
        )

        assert batch.runs == interp.runs

    def test_batch_matches_replay_rollups_exactly(self, monkeypatch):
        """Metrics and ledger buckets — excluded from SampleRun equality
        — must match the replay engine to the last integer and float:
        both engines classify useful/reexec/overhead identically."""
        _serial_env(monkeypatch)
        setup = _setup()
        workload = make_workload("MatMul", setup.scale)
        environment = _environment(workload, setup)
        reference = workload.decoded_reference()
        configs = [
            ("precise", None), (workload.technique, 8), (workload.technique, 4)
        ]

        monkeypatch.setenv("REPRO_REPLAY", "1")
        _worker_records.clear()
        replay = _grid_runs(workload, configs, "clank", setup, environment, reference)
        monkeypatch.delenv("REPRO_REPLAY")
        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        batch = _grid_runs(workload, configs, "clank", setup, environment, reference)

        assert batch == replay
        assert _rollups(batch) == _rollups(replay)

    def test_batch_numpy_fallback_identical(self, monkeypatch):
        """REPRO_BATCH_NUMPY=0 (the no-numpy code path) changes nothing
        observable, rollups included."""
        _serial_env(monkeypatch)
        setup = _setup()
        workload = make_workload("MatMul", setup.scale)
        environment = _environment(workload, setup)
        reference = workload.decoded_reference()
        configs = [(workload.technique, 8), (workload.technique, 4)]

        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        vectored = _grid_runs(workload, configs, "clank", setup, environment, reference)
        monkeypatch.setenv("REPRO_BATCH_NUMPY", "0")
        _worker_records.clear()
        scalar = _grid_runs(workload, configs, "clank", setup, environment, reference)

        assert scalar == vectored
        assert _rollups(scalar) == _rollups(vectored)

    def test_batch_serial_equals_parallel_jobs(self, monkeypatch):
        """REPRO_JOBS shards by config under the batch engine; results
        must be byte-identical to the serial run, rollups included."""
        _serial_env(monkeypatch)
        setup = _setup()
        workload = make_workload("MatMul", setup.scale)
        environment = _environment(workload, setup)
        reference = workload.decoded_reference()
        configs = [
            ("precise", None), (workload.technique, 8), (workload.technique, 4)
        ]

        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        serial = _grid_runs(workload, configs, "clank", setup, environment, reference)
        monkeypatch.setenv("REPRO_JOBS", "4")
        _worker_records.clear()
        parallel = _grid_runs(workload, configs, "clank", setup, environment, reference)

        assert parallel == serial
        assert _rollups(parallel) == _rollups(serial)

    def test_nonreplayable_record_demotes_every_lane(self, monkeypatch):
        """Memoization makes cycle costs history-dependent, so its
        record is non-replayable; run_batch_group must hand every lane
        back to the caller instead of walking the log."""
        from repro.runtime.batch_executor import run_batch_group
        from repro.experiments.common import paper_traces

        _serial_env(monkeypatch)
        workload = make_workload("MatMul", "tiny")
        kernel = build_anytime(
            workload, workload.technique, 8, memoization=True,
            zero_skipping=True,
        )
        record = record_run(kernel, workload.inputs)
        assert not record.replayable
        lane_args = [
            {
                "trace": trace,
                "runtime": "clank",
                "capacitor": Capacitor(),
                "energy_model": EnergyModel(),
                "start_tick": 0,
                "max_wall_ms": 10_000,
                "watchdog_cycles": 500,
            }
            for trace in paper_traces(count=3, duration_ms=200, base_seed=7)
        ]
        results = run_batch_group(kernel, record, workload.inputs, lane_args)
        assert results == [None] * len(lane_args)
        assert run_batch_group(kernel, record, workload.inputs, []) == []


class TestVectorKernels:
    @needs_numpy
    def test_war_oracle_matches_scalar_scan(self):
        workload = make_workload("MatMul", "tiny")
        kernel = build_anytime(workload, workload.technique, 8)
        record = record_run(kernel, workload.inputs)
        assert record.replayable
        index = build_batch_index(record)
        scalar = record_run(kernel, workload.inputs)  # memo-free twin
        starts = sorted(
            set(range(0, record.length + 1, 37))
            | set(scalar.store_pos[:50])
        )
        for start in starts:
            assert index.war_from(start) == scalar.next_war_before(
                start, scalar.length
            ), f"WAR divergence at start={start}"

    @needs_numpy
    def test_advance_lanes_matches_scalar_advance(self):
        import random

        workload = make_workload("MatMul", "tiny")
        kernel = build_anytime(workload, workload.technique, 8)
        record = record_run(kernel, workload.inputs)
        index = build_batch_index(record)
        rng = random.Random(13)
        requests = []
        for _ in range(200):
            cursor = rng.randrange(0, record.length)
            stop = rng.randrange(cursor, record.length + 1)
            budget = rng.randrange(0, 400)
            requests.append((cursor, stop, budget))
        batched = advance_lanes(record, index, requests)
        for req, got in zip(requests, batched):
            assert got == record.advance(*req), req

    @needs_numpy
    def test_charge_fast_forward_matches_scalar(self):
        from repro.experiments.common import paper_traces

        for trace in paper_traces(count=4, duration_ms=200, base_seed=11):
            energies = trace_energy_array(trace)
            for start_tick in (0, 57, 313):
                fast = PowerSupply(
                    trace, Capacitor(), EnergyModel(), start_tick=start_tick
                )
                slow = PowerSupply(
                    trace, Capacitor(), EnergyModel(), start_tick=start_tick
                )
                for _ in range(3):
                    fast.capacitor.energy *= 0.01
                    slow.capacitor.energy *= 0.01
                    waited_fast = charge_until_on_fast(fast, energies)
                    waited_slow = slow.charge_until_on()
                    assert waited_fast == waited_slow
                    assert fast.tick == slow.tick
                    assert fast.total_off_ms == slow.total_off_ms
                    assert fast.capacitor.energy == slow.capacitor.energy
                    fast.on = slow.on = False

    @needs_numpy
    def test_charge_fast_forward_dead_trace_raises(self):
        trace = PowerTrace([0.0] * 64, name="dead")
        energies = trace_energy_array(trace)
        supply = PowerSupply(
            trace, Capacitor(v_initial=1.0), EnergyModel()
        )
        with pytest.raises(SupplyExhausted):
            charge_until_on_fast(supply, energies, max_ms=500)
        # Same boundary as the scalar loop, including for a budget
        # shorter than the scalar head.
        supply = PowerSupply(trace, Capacitor(v_initial=1.0), EnergyModel())
        with pytest.raises(SupplyExhausted):
            charge_until_on_fast(supply, energies, max_ms=3)


class TestChaosSmoke:
    def test_hundred_scenarios_zero_violations_with_batch(self, monkeypatch):
        """The chaos campaign's consistency oracle stays silent with the
        batch flag set (covering the fused run_cycles live path the
        campaign's executors take)."""
        from repro.fault.campaign import run_campaign

        monkeypatch.setenv("REPRO_BATCH", "1")
        report = run_campaign(seed=1234, count=100)
        assert report["violation_count"] == 0, report["violations"][:3]
