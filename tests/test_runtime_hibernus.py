"""Tests for the Hibernus-style just-in-time checkpointing runtime."""

import pytest

from repro.isa import assemble
from repro.power import Capacitor, EnergyModel, PowerSupply, wifi_trace
from repro.runtime import HibernusRuntime, IntermittentExecutor
from repro.sim import CPU, default_memory

COUNT_SOURCE = """
.equ OUT, 0x8000
    MOV R0, #0
LOOP:
    ADD R0, R0, #1
    CMP R0, #{n}
    BLT LOOP
    MOV R1, #OUT
    STR R0, [R1, #0]
    HALT
"""


def make_cpu(n=20000):
    return CPU(assemble(COUNT_SOURCE.format(n=n)), default_memory())


def small_supply(seed=0):
    return PowerSupply(
        wifi_trace(duration_ms=4000, seed=seed),
        Capacitor(capacitance_f=0.05e-6, v_initial=3.0, v_max=3.3),
        EnergyModel(),
    )


class TestSnapshotSemantics:
    def test_low_voltage_snapshots_once_per_cycle(self):
        cpu = make_cpu()
        runtime = HibernusRuntime()
        runtime.attach(cpu)
        for _ in range(10):
            cpu.step()
        cost = runtime.on_low_voltage()
        assert cost == runtime.snapshot_cycles
        assert runtime.on_low_voltage() == 0  # armed: no second snapshot
        runtime.on_outage()
        cost = runtime.on_low_voltage()
        assert cost == runtime.snapshot_cycles  # re-armed after the outage

    def test_restore_resumes_at_snapshot(self):
        cpu = make_cpu()
        runtime = HibernusRuntime()
        runtime.attach(cpu)
        for _ in range(10):
            cpu.step()
        runtime.on_low_voltage()
        snapshot_pc = cpu.pc
        snapshot_r0 = cpu.regs[0]
        for _ in range(5):
            cpu.step()  # progress past the snapshot, then crash
        runtime.on_outage()
        runtime.on_restore()
        assert cpu.pc == snapshot_pc
        assert cpu.regs[0] == snapshot_r0

    def test_skim_overrides_restore(self):
        cpu = CPU(assemble("SKM END\nLOOP: B LOOP\nEND: HALT"), default_memory())
        runtime = HibernusRuntime()
        runtime.attach(cpu)
        cpu.step()
        runtime.on_outage()
        runtime.on_restore()
        assert cpu.pc == 2


class TestHibernusUnderIntermittency:
    def test_completes_and_matches_continuous(self):
        n = 20000
        reference_cpu = make_cpu(n)
        reference_cpu.run()
        expected = reference_cpu.memory.load_word(0x8000)

        cpu = make_cpu(n)
        result = IntermittentExecutor(cpu, small_supply(), HibernusRuntime()).run()
        assert result.completed
        assert result.outages >= 1
        assert cpu.memory.load_word(0x8000) == expected

    def test_one_snapshot_per_power_cycle(self):
        cpu = make_cpu(40000)
        runtime = HibernusRuntime()
        result = IntermittentExecutor(cpu, small_supply(seed=2), runtime).run()
        assert result.completed
        # At most one snapshot per outage (plus none on the final cycle
        # if the program halts before the low-voltage trigger).
        assert runtime.stats.checkpoints <= result.outages + 1
        assert runtime.stats.checkpoints >= 1

    def test_snapshot_bounds_reexecution(self):
        """JIT snapshots lose almost nothing at an outage: the total
        executed cycles stay close to the continuous runtime plus the
        snapshot/restore overheads."""
        n = 40000
        continuous = make_cpu(n)
        continuous_cycles = continuous.run()

        cpu = make_cpu(n)
        runtime = HibernusRuntime()
        result = IntermittentExecutor(cpu, small_supply(seed=3), runtime).run()
        assert result.completed
        overhead = (
            runtime.stats.checkpoint_cycles + runtime.stats.restore_cycles
        )
        # Allow a small slack for cycles cut short at tick boundaries.
        assert result.active_cycles <= continuous_cycles + overhead + 2000
