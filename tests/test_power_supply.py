"""Unit tests for the capacitor, energy model and supply FSM."""

import pytest

from repro.power import (
    Capacitor,
    EnergyModel,
    PowerSupply,
    SupplyExhausted,
    constant_trace,
    square_trace,
)


class TestCapacitor:
    def test_energy_voltage_roundtrip(self):
        cap = Capacitor(capacitance_f=10e-6, v_initial=3.0)
        assert cap.voltage == pytest.approx(3.0)
        assert cap.energy == pytest.approx(0.5 * 10e-6 * 9.0)

    def test_harvest_accumulates(self):
        cap = Capacitor(v_initial=0.0)
        cap.harvest(1e-6)
        assert cap.energy == pytest.approx(1e-6)

    def test_harvest_clamped_at_vmax(self):
        cap = Capacitor(v_max=4.5, v_initial=4.5)
        e_before = cap.energy
        cap.harvest(1.0)
        assert cap.energy == e_before

    def test_draw_clamped_at_zero(self):
        cap = Capacitor(v_initial=1.0)
        cap.draw(1.0)
        assert cap.energy == 0.0

    def test_negative_amounts_rejected(self):
        cap = Capacitor()
        with pytest.raises(ValueError):
            cap.harvest(-1.0)
        with pytest.raises(ValueError):
            cap.draw(-1.0)

    def test_thresholds(self):
        cap = Capacitor(v_on=3.0, v_off=1.8, v_initial=3.0)
        assert cap.above_on_threshold
        assert not cap.below_off_threshold
        cap.set_voltage(1.0)
        assert cap.below_off_threshold

    def test_usable_energy(self):
        cap = Capacitor(capacitance_f=10e-6, v_off=1.8, v_initial=3.0)
        expected = 0.5 * 10e-6 * (3.0**2 - 1.8**2)
        assert cap.usable_energy == pytest.approx(expected)

    def test_full_swing_energy_is_paper_budget(self):
        """10 uF swinging 3.0 V -> 1.8 V stores ~28.8 uJ of work."""
        cap = Capacitor(capacitance_f=10e-6, v_on=3.0, v_off=1.8)
        assert cap.full_swing_energy == pytest.approx(28.8e-6, rel=1e-9)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            Capacitor(v_on=1.0, v_off=2.0)

    def test_set_voltage_range_checked(self):
        cap = Capacitor(v_max=4.5)
        with pytest.raises(ValueError):
            cap.set_voltage(5.0)


class TestEnergyModel:
    def test_defaults_give_few_ms_per_charge(self):
        """The paper regime: one capacitor charge lasts a few ms."""
        model = EnergyModel()
        cap = Capacitor()
        cycles = model.cycles_for_energy(cap.full_swing_energy)
        ms = model.ms_for_cycles(cycles)
        assert 1.0 <= ms <= 20.0

    def test_cycles_per_ms(self):
        assert EnergyModel(clock_hz=24_000_000).cycles_per_ms == 24_000

    def test_backup_overhead_scales_energy(self):
        base = EnergyModel(energy_per_cycle_j=100e-12)
        nvp = EnergyModel(energy_per_cycle_j=100e-12, backup_overhead=0.25)
        assert nvp.energy_per_cycle == pytest.approx(125e-12)

    def test_energy_cycles_roundtrip(self):
        model = EnergyModel(energy_per_cycle_j=200e-12)
        assert model.cycles_for_energy(model.energy_for_cycles(1234)) == 1234

    def test_zero_energy_zero_cycles(self):
        assert EnergyModel().cycles_for_energy(0.0) == 0
        assert EnergyModel().cycles_for_energy(-1.0) == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(energy_per_cycle_j=0)
        with pytest.raises(ValueError):
            EnergyModel(backup_overhead=-0.1)

    def test_active_power(self):
        model = EnergyModel(energy_per_cycle_j=208e-12, clock_hz=24_000_000)
        assert model.active_power_w == pytest.approx(5e-3, rel=0.01)


class TestPowerSupply:
    def make_supply(self, trace, **cap_kwargs):
        return PowerSupply(trace, Capacitor(**cap_kwargs), EnergyModel())

    def test_charges_until_on(self):
        supply = self.make_supply(constant_trace(1e-3, 1000))
        waited = supply.charge_until_on()
        assert supply.on
        assert waited > 0
        assert supply.capacitor.voltage >= supply.capacitor.v_on

    def test_dead_trace_raises(self):
        supply = self.make_supply(constant_trace(0.0, 10))
        with pytest.raises(SupplyExhausted):
            supply.charge_until_on(max_ms=100)

    def test_begin_tick_requires_on(self):
        supply = self.make_supply(constant_trace(1e-3, 10))
        with pytest.raises(RuntimeError):
            supply.begin_tick()
        with pytest.raises(RuntimeError):
            supply.finish_tick()

    def test_budget_capped_by_clock(self):
        supply = self.make_supply(constant_trace(10e-3, 1000))
        supply.charge_until_on()
        assert supply.begin_tick() <= supply.energy.cycles_per_ms

    def test_brownout_detected(self):
        supply = self.make_supply(square_trace(2e-3, on_ms=50, off_ms=200, periods=40))
        supply.charge_until_on()
        ticks_alive = 0
        # Drain at full clock rate until brown-out.
        for _ in range(10_000):
            budget = supply.begin_tick()
            supply.consume_cycles(budget)
            if not supply.finish_tick():
                break
            ticks_alive += 1
        assert not supply.on
        assert supply.outages == 1
        # ~5.8 ms per full swing with default parameters
        assert 1 <= ticks_alive <= 30

    def test_charge_discharge_cycle_repeats(self):
        supply = self.make_supply(square_trace(2e-3, on_ms=30, off_ms=100, periods=200))
        outage_count = 0
        for _ in range(5):
            supply.charge_until_on()
            while True:
                budget = supply.begin_tick()
                supply.consume_cycles(budget)
                if not supply.finish_tick():
                    outage_count += 1
                    break
        assert outage_count == 5
        assert supply.outages == 5

    def test_consume_negative_rejected(self):
        supply = self.make_supply(constant_trace(1e-3, 10))
        with pytest.raises(ValueError):
            supply.consume_cycles(-1)

    def test_bookkeeping(self):
        supply = self.make_supply(constant_trace(5e-3, 1000))
        supply.charge_until_on()
        budget = supply.begin_tick()
        supply.consume_cycles(100)
        supply.finish_tick()
        assert supply.total_cycles == 100
        assert supply.total_on_ms == 1
        assert supply.elapsed_ms == supply.tick
