"""Differential tests: fast pre-decoded CPU vs. the golden-model ReferenceCPU.

The contract (see docs/ARCHITECTURE.md, "Performance notes"): the fast
interpreter must be *indistinguishable* from the reference — same
per-step cycles and peek costs, same architectural state at every step
boundary, same final statistics, memory and outputs — on random
programs, on every shipped workload, and under intermittent execution
with every runtime.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import AnytimeConfig, AnytimeKernel
from repro.isa import assemble
from repro.isa.instructions import (
    ASP_WIDTHS,
    ASV_WIDTHS,
    BRANCH_CONDS,
    Instruction,
)
from repro.isa.program import Program
from repro.power import Capacitor, EnergyModel, wifi_trace
from repro.sim import CPU, ReferenceCPU, default_memory
from repro.workloads import BENCHMARKS, make_workload

SCRATCH = 0x100  # NVM scratch the random programs read/write through R7
SCRATCH_WORDS = 64

# Immediates chosen to hit the interpreter's edge cases: the unmasked
# register-write quirk of AND/ORR/EOR (negative immediates), shift
# saturation (>= 32), and sign/carry boundaries.
INTERESTING_IMMS = [
    -0x80000000, -0x8000, -256, -100, -2, -1, 0, 1, 2, 7, 31, 32, 33,
    0x7F, 0x80, 0xFF, 0x7FFF, 0x8000, 0x12345, 0x7FFFFFFF, 0x80000000,
    0xFFFFFFFF,
]

DATA_REGS = list(range(7))  # R7 stays the scratch base pointer


def _random_body(rng, size):
    """A list of (op, fields) specs; branch targets are forward-only."""
    body = []
    for idx in range(size):
        kind = rng.randrange(10)
        if kind == 0:  # unary ALU
            op = rng.choice(["MOV", "MVN", "NEG", "SXTB", "SXTH", "UXTB", "UXTH"])
            if rng.random() < 0.5:
                body.append((op, dict(rd=rng.choice(DATA_REGS), rm=rng.randrange(8))))
            else:
                body.append((op, dict(rd=rng.choice(DATA_REGS),
                                      imm=rng.choice(INTERESTING_IMMS))))
        elif kind in (1, 2, 3):  # two-operand ALU
            op = rng.choice(["ADD", "ADC", "SUB", "SBC", "RSB", "AND", "ORR",
                             "EOR", "BIC", "LSL", "LSR", "ASR"])
            fields = dict(rd=rng.choice(DATA_REGS), rn=rng.randrange(8))
            if rng.random() < 0.5:
                fields["rm"] = rng.randrange(8)
            else:
                fields["imm"] = rng.choice(INTERESTING_IMMS)
            body.append((op, fields))
        elif kind == 4:  # compares
            op = rng.choice(["CMP", "CMN", "TST"])
            fields = dict(rn=rng.randrange(8))
            if rng.random() < 0.5:
                fields["rm"] = rng.randrange(8)
            else:
                fields["imm"] = rng.choice(INTERESTING_IMMS)
            body.append((op, fields))
        elif kind == 5:  # loads (immediate offset into the scratch window)
            op = rng.choice(["LDR", "LDRB", "LDRH"])
            body.append((op, dict(rd=rng.choice(DATA_REGS), rn=7,
                                  imm=rng.randrange(SCRATCH_WORDS * 4 - 4))))
        elif kind == 6:  # stores
            op = rng.choice(["STR", "STRB", "STRH"])
            body.append((op, dict(rd=rng.choice(DATA_REGS), rn=7,
                                  imm=rng.randrange(SCRATCH_WORDS * 4 - 4))))
        elif kind == 7:  # multiplies, incl. the WN anytime variants
            r = rng.random()
            if r < 0.4:
                body.append(("MUL", dict(rd=rng.choice(DATA_REGS),
                                         rm=rng.randrange(8))))
            else:
                width = rng.choice(ASP_WIDTHS)
                op = (f"MUL_ASPS{width}" if r < 0.7 else f"MUL_ASP{width}")
                body.append((op, dict(rd=rng.choice(DATA_REGS),
                                      rm=rng.randrange(8),
                                      imm=rng.randrange(4))))
        elif kind == 8:  # vector add/sub
            width = rng.choice(ASV_WIDTHS)
            op = rng.choice(["ADD", "SUB"]) + f"_ASV{width}"
            body.append((op, dict(rd=rng.choice(DATA_REGS), rm=rng.randrange(8))))
        else:  # control flow (forward targets only, so programs halt)
            r = rng.random()
            if r < 0.5:
                op = rng.choice(sorted(BRANCH_CONDS))
                body.append((op, dict(target="fwd")))
            elif r < 0.7:
                body.append(("B", dict(target="fwd")))
            elif r < 0.8:
                body.append(("BL", dict(target="fwd")))
            elif r < 0.9:
                body.append(("SKM", dict(target="fwd")))
            else:
                body.append(("NOP", {}))
    return body


def _materialize(body, rng):
    """Specs -> Program: preamble, resolved forward targets, HALT."""
    instrs = [Instruction("MOV", rd=7, imm=SCRATCH)]
    halt_index = len(body) + 1
    for offset, (op, fields) in enumerate(body):
        index = offset + 1
        if fields.get("target") == "fwd":
            fields = dict(fields, target=rng.randrange(index + 1, halt_index + 1))
        instrs.append(Instruction(op, **fields))
    instrs.append(Instruction("HALT"))
    return Program(instrs, name="random")


def _fresh_pair(program, data_words):
    cpus = []
    for cls in (CPU, ReferenceCPU):
        memory = default_memory()
        memory.write_words(SCRATCH, data_words)
        cpus.append(cls(program, memory))
    return cpus


def _state(cpu):
    return (cpu.pc, cpu.halted, list(cpu.regs.regs), cpu.flags.snapshot())


class TestRandomProgramLockstep:
    """Step-by-step equivalence on randomly generated programs."""

    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, 10**9), st.integers(5, 60))
    def test_lockstep(self, seed, size):
        rng = random.Random(seed)
        program = _materialize(_random_body(rng, size), rng)
        data = [rng.randrange(0, 2**32) for _ in range(SCRATCH_WORDS)]
        fast, ref = _fresh_pair(program, data)

        for _ in range(len(program) + 5):
            assert fast.halted == ref.halted
            if fast.halted:
                break
            assert fast.peek_cost() == ref.peek_cost(), f"peek @ pc={fast.pc}"
            fast_cycles = fast.step()
            ref_cycles = ref.step()
            assert fast_cycles == ref_cycles, f"cycles @ pc={ref.pc}"
            assert _state(fast) == _state(ref)
        else:
            raise AssertionError("random program did not halt (forward branches)")

        assert fast.stats.as_dict() == ref.stats.as_dict()
        assert dict(fast.stats.op_counts) == dict(ref.stats.op_counts)
        assert fast.memory.regions[0].data == ref.memory.regions[0].data
        # Functional-unit bookkeeping matches too.
        assert fast.adder.add_count == ref.adder.add_count
        assert fast.multiplier.mul_count == ref.multiplier.mul_count
        assert fast.multiplier.total_mul_cycles == ref.multiplier.total_mul_cycles

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10**9), st.integers(5, 60), st.integers(1, 40))
    def test_run_cycles_windows_match(self, seed, size, window):
        """Driving both CPUs in cycle windows (as the quality-curve and
        intermittent executor do) consumes identical cycles per window."""
        rng = random.Random(seed)
        program = _materialize(_random_body(rng, size), rng)
        data = [rng.randrange(0, 2**32) for _ in range(SCRATCH_WORDS)]
        fast, ref = _fresh_pair(program, data)

        for _ in range(1000):
            if fast.halted or ref.halted:
                break
            assert fast.run_cycles(window) == ref.run_cycles(window)
            assert _state(fast) == _state(ref)
        assert fast.halted == ref.halted
        assert fast.stats.as_dict() == ref.stats.as_dict()


BXPROGRAM = """
    MOV R0, #5
    BL DOUBLE
    ADD R1, R0, #1
    HALT
DOUBLE:
    ADD R0, R0, R0
    BX LR
"""


class TestCallReturn:
    def test_bl_bx_roundtrip_matches(self):
        program = assemble(BXPROGRAM)
        fast, ref = _fresh_pair(program, [0] * SCRATCH_WORDS)
        assert fast.run() == ref.run()
        assert _state(fast) == _state(ref)
        assert fast.stats.as_dict() == ref.stats.as_dict()
        assert fast.regs[1] == 11


def _workload_configs():
    for name in BENCHMARKS:
        yield name, "precise", None, False
        workload = make_workload(name, "tiny")
        yield name, workload.technique, 8, False
    # 4-bit and accelerated-multiplier builds on the two swp flagships.
    yield "MatMul", "swp", 4, False
    yield "Var", "swp", 4, False
    yield "MatMul", "swp", 8, True
    yield "Var", "swp", 8, True


class TestWorkloadEquivalence:
    """Continuous-power equivalence on every shipped benchmark."""

    def test_all_workloads_all_modes(self):
        for name, mode, bits, accelerated in _workload_configs():
            workload = make_workload(name, "tiny")
            config = AnytimeConfig(
                mode=mode,
                bits=bits,
                memoization=accelerated,
                zero_skipping=accelerated,
            )
            kernel = AnytimeKernel(workload.kernel, config)
            label = (name, mode, bits, accelerated)

            fast = kernel.make_cpu(workload.inputs)
            ref = kernel.make_cpu(workload.inputs, cpu_cls=ReferenceCPU)
            assert fast.predecode and not ref.predecode
            fast_cycles = fast.run()
            ref_cycles = ref.run()
            assert fast_cycles == ref_cycles, label
            assert fast.stats.as_dict() == ref.stats.as_dict(), label
            assert dict(fast.stats.op_counts) == dict(ref.stats.op_counts), label
            assert kernel.read_outputs(fast) == kernel.read_outputs(ref), label
            assert list(fast.regs.regs) == list(ref.regs.regs), label
            assert fast.memory.regions[0].data == ref.memory.regions[0].data, label


class TestIntermittentEquivalence:
    """The executor + runtimes see identical behavior from both CPUs."""

    def _run(self, cpu_cls, runtime, seed):
        workload = make_workload("MatMul", "tiny")
        kernel = AnytimeKernel(
            workload.kernel, AnytimeConfig(mode=workload.technique, bits=8)
        )
        return kernel.run_intermittent(
            workload.inputs,
            wifi_trace(duration_ms=3000, seed=seed),
            runtime=runtime,
            capacitor=Capacitor(capacitance_f=0.1e-6, v_initial=3.0, v_max=3.3),
            energy_model=EnergyModel(),
            max_wall_ms=500_000,
            watchdog_cycles=500 if runtime == "clank" else None,
            cpu_cls=cpu_cls,
        )

    def test_all_runtimes_match(self):
        for runtime in ("clank", "nvp", "hibernus"):
            for seed in (0, 3):
                fast = self._run(CPU, runtime, seed)
                ref = self._run(ReferenceCPU, runtime, seed)
                label = (runtime, seed)
                assert fast.outputs == ref.outputs, label
                assert fast.result.completed == ref.result.completed, label
                assert fast.result.skim_taken == ref.result.skim_taken, label
                assert fast.result.wall_ms == ref.result.wall_ms, label
                assert fast.result.on_ms == ref.result.on_ms, label
                assert fast.result.active_cycles == ref.result.active_cycles, label
                assert fast.result.outages == ref.result.outages, label
