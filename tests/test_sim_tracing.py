"""Tests for the execution tracer, cycle profiler and disassembler."""

import pytest

from repro.isa import assemble
from repro.sim import CPU, CycleProfiler, ExecutionTracer, default_memory, disassemble

SOURCE = """
    MOV R0, #0
LOOP:
    ADD R0, R0, #1
    MUL R0, R0
    CMP R0, #100
    BLT LOOP
    HALT
"""


def fresh_cpu():
    return CPU(assemble(SOURCE), default_memory())


class TestTracer:
    def test_records_retired_instructions(self):
        cpu = fresh_cpu()
        tracer = ExecutionTracer(cpu, capacity=1000)
        cpu.run()
        assert len(tracer.entries) == cpu.stats.instructions
        first_cycle, first_pc, first_text, first_cost = tracer.entries[0]
        assert first_pc == 0
        assert "MOV" in first_text
        assert first_cost == 1

    def test_ring_is_bounded(self):
        cpu = fresh_cpu()
        tracer = ExecutionTracer(cpu, capacity=5)
        cpu.run()
        assert len(tracer.entries) == 5
        assert "HALT" in tracer.entries[-1][2]

    def test_render_contains_columns(self):
        cpu = fresh_cpu()
        tracer = ExecutionTracer(cpu)
        cpu.run()
        text = tracer.render(last=3)
        assert "cycle" in text and "instruction" in text

    def test_detach_restores_step(self):
        cpu = fresh_cpu()
        tracer = ExecutionTracer(cpu)
        cpu.step()
        tracer.detach()
        cpu.step()
        assert len(tracer.entries) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ExecutionTracer(fresh_cpu(), capacity=0)

    def test_tracing_does_not_change_results(self):
        plain = fresh_cpu()
        plain_cycles = plain.run()
        traced = fresh_cpu()
        ExecutionTracer(traced)
        assert traced.run() == plain_cycles
        assert traced.regs[0] == plain.regs[0]


class TestProfiler:
    def test_cycles_attributed(self):
        cpu = fresh_cpu()
        profiler = CycleProfiler(cpu)
        total = cpu.run()
        assert profiler.total_cycles == total
        # The 16-cycle multiply dominates.
        hottest_pc, hottest_cycles, visits = profiler.hottest(1)[0]
        assert cpu.program.instructions[hottest_pc].op == "MUL"
        assert hottest_cycles >= 16 * visits * 0.9

    def test_render(self):
        cpu = fresh_cpu()
        profiler = CycleProfiler(cpu)
        cpu.run()
        text = profiler.render(3)
        assert "share" in text and "MUL" in text

    def test_detach(self):
        cpu = fresh_cpu()
        profiler = CycleProfiler(cpu)
        cpu.step()
        profiler.detach()
        cpu.step()
        assert sum(profiler.visits_by_pc.values()) == 1


class TestDisassembler:
    def test_lists_labels_and_costs(self):
        text = disassemble(assemble(SOURCE))
        assert "LOOP:" in text
        assert "MUL" in text
        # The multiply's static cost column shows 16.
        mul_line = next(line for line in text.splitlines() if "MUL" in line)
        assert "16" in mul_line
