"""Tests for the anytime compiler passes (SWP and SWV).

The central property: for any inputs, the transformed kernel's IR
evaluation equals the original's — the anytime schedule reconstructs
the precise result once all subword phases run (distributivity for SWP,
carry-preserving lanes for provisioned SWV).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Array,
    Assign,
    BinOp,
    Const,
    Kernel,
    Load,
    Loop,
    MulAsp,
    Pragma,
    SkimPoint,
    Store,
    SubwordLoad,
    SwpError,
    SwvError,
    Var,
    apply_swp,
    apply_swv,
    evaluate,
    evaluate_logical,
)
from repro.compiler.passes.swp import subword_schedule


def listing1(n=8, bits=8):
    return Kernel(
        "l1",
        {
            "A": Array("A", n, 16, "input", pragma=Pragma("asp", bits)),
            "F": Array("F", n, 16, "input"),
            "X": Array("X", n, 32, "output"),
        },
        [Loop("i", 0, n, [
            Store("X", Var("i"), BinOp("*", Load("F", Var("i")), Load("A", Var("i"))), accumulate=True)
        ])],
    )


def listing3(n=16, bits=8, provisioned=True, op="+"):
    pragma = lambda: Pragma("asv", bits, provisioned)  # noqa: E731
    return Kernel(
        "l3",
        {
            "A": Array("A", n, 16, "input", pragma=pragma()),
            "B": Array("B", n, 16, "input", pragma=pragma()),
            "X": Array("X", n, 16, "output", pragma=pragma()),
        },
        [Loop("i", 0, n, [
            Store("X", Var("i"), BinOp(op, Load("A", Var("i")), Load("B", Var("i"))))
        ])],
    )


class TestSubwordSchedule:
    def test_dividing_width(self):
        assert subword_schedule(16, 8) == [(8, 8), (8, 0)]
        assert subword_schedule(16, 4) == [(4, 12), (4, 8), (4, 4), (4, 0)]

    def test_non_dividing_width_full_msb_first(self):
        assert subword_schedule(16, 3) == [(3, 13), (3, 10), (3, 7), (3, 4), (3, 1), (1, 0)]

    def test_one_bit(self):
        schedule = subword_schedule(16, 1)
        assert len(schedule) == 16
        assert schedule[0] == (1, 15)
        assert schedule[-1] == (1, 0)

    def test_invalid_width(self):
        with pytest.raises(SwpError):
            subword_schedule(16, 0)


class TestSwpStructure:
    def test_requires_pragma(self):
        kernel = listing1()
        kernel.arrays["A"].pragma = None
        with pytest.raises(SwpError):
            apply_swp(kernel)

    def test_phase_count(self):
        transformed = apply_swp(listing1(bits=8))
        loops = [s for s in transformed.body if isinstance(s, Loop)]
        assert len(loops) == 2  # 16-bit data, 8-bit subwords

    def test_skim_points_between_phases(self):
        transformed = apply_swp(listing1(bits=4))
        skims = [s for s in transformed.body if isinstance(s, SkimPoint)]
        assert len(skims) == 3  # after each phase except the last

    def test_msb_phase_first(self):
        transformed = apply_swp(listing1(bits=8))
        first_loop = next(s for s in transformed.body if isinstance(s, Loop))
        muls = [
            e for stmt in first_loop.body
            for e in _walk_stmt(stmt)
            if isinstance(e, MulAsp)
        ]
        assert muls and all(m.shift == 8 for m in muls)

    def test_bits_override(self):
        transformed = apply_swp(listing1(bits=8), bits=4)
        loops = [s for s in transformed.body if isinstance(s, Loop)]
        assert len(loops) == 4

    def test_later_phases_accumulate(self):
        kernel = Kernel(
            "direct",
            {
                "A": Array("A", 4, 16, "input", pragma=Pragma("asp", 8)),
                "F": Array("F", 4, 16, "input"),
                "X": Array("X", 4, 32, "output"),
            },
            [Loop("i", 0, 4, [
                Store("X", Var("i"), BinOp("*", Load("F", Var("i")), Load("A", Var("i"))))
            ])],
        )
        transformed = apply_swp(kernel)
        loops = [s for s in transformed.body if isinstance(s, Loop)]
        first_store = next(s for s in _walk_body(loops[0]) if isinstance(s, Store))
        later_store = next(s for s in _walk_body(loops[1]) if isinstance(s, Store))
        assert not first_store.accumulate
        assert later_store.accumulate

    def test_independent_reduction_runs_once(self):
        """An untainted persistent accumulation must not re-run per phase."""
        kernel = Kernel(
            "mixed",
            {
                "A": Array("A", 4, 16, "input", pragma=Pragma("asp", 8)),
                "S": Array("S", 1, 32, "output"),
                "Q": Array("Q", 1, 32, "output"),
            },
            [
                Assign("total", Const(0)),
                Assign("power", Const(0)),
                Loop("i", 0, 4, [
                    Assign("total", BinOp("+", Var("total"), Load("A", Var("i")))),
                    Assign("power", BinOp("+", Var("power"),
                                          BinOp("*", Load("A", Var("i")), Load("A", Var("i"))))),
                ]),
                Store("S", Const(0), Var("total")),
                Store("Q", Const(0), Var("power")),
            ],
            scalars=("total", "power"),
        )
        inputs = {"A": [5, 6, 7, 8]}
        reference = evaluate(kernel, inputs)
        transformed = apply_swp(kernel)
        result = evaluate(transformed, inputs)
        assert result["S"] == reference["S"]  # not double-counted
        assert result["Q"] == reference["Q"]


def _walk_stmt(stmt):
    from repro.compiler.ir import walk_exprs

    if isinstance(stmt, Loop):
        for inner in stmt.body:
            yield from _walk_stmt(inner)
    elif isinstance(stmt, (Store, Assign)):
        yield from walk_exprs(stmt.expr)


def _walk_body(loop):
    for stmt in loop.body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from _walk_body(stmt)


class TestSwpSemantics:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8),
        st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8),
        st.sampled_from([1, 2, 3, 4, 8]),
    )
    def test_swp_preserves_semantics_property(self, a, f, bits):
        kernel = listing1(bits=bits)
        inputs = {"A": a, "F": f}
        assert evaluate(apply_swp(kernel), inputs)["X"] == evaluate(kernel, inputs)["X"]


class TestSwvStructure:
    def test_requires_pragma(self):
        kernel = listing3()
        for array in kernel.arrays.values():
            array.pragma = None
        with pytest.raises(SwvError):
            apply_swv(kernel)

    def test_repacked_arrays(self):
        transformed = apply_swv(listing3(bits=8, provisioned=False))
        packed = transformed.arrays["A"]
        assert packed.element_bits == 32
        assert packed.logical_length == 16
        assert packed.logical_bits == 16
        assert packed.length == 2 * (16 // 4)  # 2 planes x 4 groups

    def test_provisioned_doubles_words(self):
        unprov = apply_swv(listing3(bits=8, provisioned=False)).arrays["A"]
        prov = apply_swv(listing3(bits=8, provisioned=True)).arrays["A"]
        assert prov.length == 2 * unprov.length

    def test_skim_points_between_planes(self):
        transformed = apply_swv(listing3(bits=4, provisioned=True))
        skims = [s for s in transformed.body if isinstance(s, SkimPoint)]
        assert len(skims) == 3  # 4 planes of 16-bit data

    def test_width_must_be_4_or_8(self):
        with pytest.raises(SwvError):
            apply_swv(listing3(), bits=3)

    def test_trip_count_divisibility_checked(self):
        with pytest.raises(SwvError):
            apply_swv(listing3(n=5, bits=8, provisioned=False))

    def test_logical_ops_stay_full_width(self):
        transformed = apply_swv(listing3(op="^", provisioned=False))
        from repro.compiler.ir import VecOp, walk_exprs

        for stmt in transformed.body:
            for inner in _walk_stmt(stmt):
                assert not isinstance(inner, VecOp)


class TestSwvSemantics:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
        st.sampled_from([4, 8]),
    )
    def test_provisioned_add_exact_property(self, a, b, bits):
        kernel = listing3(bits=bits, provisioned=True)
        inputs = {"A": a, "B": b}
        assert evaluate_logical(apply_swv(kernel), inputs)["X"] == evaluate(kernel, inputs)["X"]

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
        st.sampled_from(["&", "|", "^"]),
    )
    def test_logical_ops_exact_property(self, a, b, op):
        kernel = listing3(op=op, provisioned=False)
        inputs = {"A": a, "B": b}
        assert evaluate_logical(apply_swv(kernel), inputs)["X"] == evaluate(kernel, inputs)["X"]

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
        st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16),
    )
    def test_unprovisioned_add_wraps_per_subword_property(self, a, b):
        kernel = listing3(bits=8, provisioned=False)
        result = evaluate_logical(apply_swv(kernel), {"A": a, "B": b})["X"]
        expected = []
        for x, y in zip(a, b):
            lo = ((x & 0xFF) + (y & 0xFF)) & 0xFF
            hi = ((x >> 8) + (y >> 8)) & 0xFF
            expected.append((hi << 8) | lo)
        assert result == expected

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(0, 0xFFFF), min_size=32, max_size=32), st.sampled_from([4, 8]))
    def test_reduction_exact_property(self, data, bits):
        kernel = Kernel(
            "red",
            {
                "D": Array("D", 32, 16, "input", pragma=Pragma("asv", bits, True)),
                "NET": Array("NET", 1, 32, "output"),
            },
            [
                Assign("acc", Const(0)),
                Loop("i", 0, 32, [Assign("acc", BinOp("+", Var("acc"), Load("D", Var("i"))))]),
                Store("NET", Const(0), Var("acc")),
            ],
            scalars=("acc",),
        )
        inputs = {"D": data}
        assert evaluate_logical(apply_swv(kernel), inputs)["NET"] == evaluate(kernel, inputs)["NET"]
