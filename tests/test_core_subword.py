"""Unit and property tests for subword decomposition and plane layouts."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    group_size,
    join_subwords,
    pack_planes,
    pack_planes_provisioned,
    padded_count,
    plane_count,
    provisioned_group_size,
    split_subwords,
    unpack_planes,
    unpack_planes_provisioned,
)


class TestSplitJoin:
    def test_split_16bit_into_bytes(self):
        assert split_subwords(0x1234, 8, 16) == [0x34, 0x12]

    def test_split_16bit_into_nibbles(self):
        assert split_subwords(0xABCD, 4, 16) == [0xD, 0xC, 0xB, 0xA]

    def test_join_inverse(self):
        assert join_subwords([0x34, 0x12], 8) == 0x1234

    def test_value_masked_to_element(self):
        assert split_subwords(0x1_FFFF, 8, 16) == [0xFF, 0xFF]

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            split_subwords(1, 0, 16)
        with pytest.raises(ValueError):
            split_subwords(1, 5, 16)

    @given(st.integers(0, 0xFFFFFFFF), st.sampled_from([(4, 16), (8, 16), (4, 32), (8, 32), (16, 32)]))
    def test_roundtrip_property(self, value, widths):
        sub, elem = widths
        value &= (1 << elem) - 1
        assert join_subwords(split_subwords(value, sub, elem), sub) == value


class TestGroupHelpers:
    def test_group_size(self):
        assert group_size(8) == 4
        assert group_size(4) == 8
        assert group_size(16) == 2

    def test_group_size_rejects_nondivisor(self):
        with pytest.raises(ValueError):
            group_size(5)

    def test_plane_count(self):
        assert plane_count(8, 16) == 2
        assert plane_count(4, 16) == 4
        assert plane_count(8, 32) == 4

    def test_provisioned_group_size(self):
        assert provisioned_group_size(8) == 2  # 16-bit lanes
        assert provisioned_group_size(4) == 4  # 8-bit lanes

    def test_padded_count(self):
        assert padded_count(5, 8) == 8  # groups of 4
        assert padded_count(8, 8) == 8
        assert padded_count(9, 4) == 16


class TestPlanePacking:
    def test_pack_msb_plane_first(self):
        # Four 16-bit elements, 8-bit subwords: plane 0 = the MSBs.
        values = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
        words = pack_planes(values, 8, 16)
        assert len(words) == 2
        assert words[0] == 0xDE9A5612  # MSBs, element 0 in the low lane
        assert words[1] == 0xF0BC7834  # LSBs

    def test_unpack_inverse(self):
        values = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
        words = pack_planes(values, 8, 16)
        assert unpack_planes(words, 8, 16, 4) == values

    def test_pack_pads_partial_group(self):
        words = pack_planes([0x1234], 8, 16)
        assert len(words) == 2
        assert unpack_planes(words, 8, 16, 1) == [0x1234]

    def test_unpack_insufficient_words_rejected(self):
        with pytest.raises(ValueError):
            unpack_planes([0], 8, 16, 4)

    def test_partial_planes_give_partial_values(self):
        """Zero LSb planes (not yet computed) yield the MSb approximation."""
        values = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
        words = pack_planes(values, 8, 16)
        words[1] = 0  # LSb plane not yet written
        approx = unpack_planes(words, 8, 16, 4)
        assert approx == [v & 0xFF00 for v in values]

    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40),
        st.sampled_from([4, 8]),
    )
    def test_roundtrip_16bit_property(self, values, bits):
        words = pack_planes(values, bits, 16)
        assert unpack_planes(words, bits, 16, len(values)) == values

    @given(
        st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=20),
        st.sampled_from([4, 8]),
    )
    def test_roundtrip_32bit_property(self, values, bits):
        words = pack_planes(values, bits, 32)
        assert unpack_planes(words, bits, 32, len(values)) == values


class TestProvisionedPacking:
    def test_lane_doubling(self):
        # 8-bit subwords in 16-bit lanes: 2 elements per word.
        values = [0x1234, 0x5678]
        words = pack_planes_provisioned(values, 8, 16)
        assert len(words) == 2
        assert words[0] == 0x00560012  # MSBs in 16-bit lanes
        assert words[1] == 0x00780034

    def test_unpack_inverse(self):
        values = [0x1234, 0x5678, 0x9ABC]
        words = pack_planes_provisioned(values, 8, 16)
        assert unpack_planes_provisioned(words, 8, 16, 3) == values

    def test_carry_bits_recombine(self):
        """Lane values above the subword width (carry-outs from a
        vectorized add) contribute to the next significance level."""
        # One element, 8-bit subwords: planes [MSb, LSb].
        # LSb lane holds 0x1FF (carry bit set) -> value = 0x100 + 0xFF + MSb<<8.
        words = [0x0001, 0x01FF]
        assert unpack_planes_provisioned(words, 8, 16, 1) == [0x1FF + 0x100]

    def test_insufficient_words_rejected(self):
        with pytest.raises(ValueError):
            unpack_planes_provisioned([0], 8, 16, 4)

    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=20),
        st.sampled_from([4, 8]),
    )
    def test_roundtrip_property(self, values, bits):
        words = pack_planes_provisioned(values, bits, 16)
        assert unpack_planes_provisioned(words, bits, 16, len(values)) == values

    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=16),
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=16),
    )
    def test_provisioned_vector_add_is_exact(self, a_values, b_values):
        """The headline provisioned-SWV property: packed lane-wise adds
        with 2W lanes reconstruct the exact elementwise sum."""
        from repro.sim import SubwordAdder

        n = min(len(a_values), len(b_values))
        a_values, b_values = a_values[:n], b_values[:n]
        adder = SubwordAdder()
        a_words = pack_planes_provisioned(a_values, 8, 16)
        b_words = pack_planes_provisioned(b_values, 8, 16)
        summed = [adder.add_vector(x, y, 16) for x, y in zip(a_words, b_words)]
        result = unpack_planes_provisioned(summed, 8, 16, n, result_bits=32)
        assert result == [(x + y) for x, y in zip(a_values, b_values)]

    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=16),
        st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=16),
    )
    def test_unprovisioned_vector_add_drops_carries(self, a_values, b_values):
        """Unprovisioned lanes wrap mod 2^W per subword (paper Fig. 14)."""
        from repro.sim import SubwordAdder

        n = min(len(a_values), len(b_values))
        a_values, b_values = a_values[:n], b_values[:n]
        adder = SubwordAdder()
        a_words = pack_planes(a_values, 8, 16)
        b_words = pack_planes(b_values, 8, 16)
        summed = [adder.add_vector(x, y, 8) for x, y in zip(a_words, b_words)]
        result = unpack_planes(summed, 8, 16, n)
        expected = []
        for x, y in zip(a_values, b_values):
            lo = ((x & 0xFF) + (y & 0xFF)) & 0xFF
            hi = ((x >> 8) + (y >> 8)) & 0xFF
            expected.append((hi << 8) | lo)
        assert result == expected
