"""The self-healing experiment harness:

* a worker process dying mid-grid never kills the run — its specs are
  retried serially with one aggregated stderr warning and the results
  are identical to an undisturbed run;
* ``REPRO_RESUME=<dir>`` persists per-config results atomically, so an
  interrupted ``REPRO_JOBS=4`` grid resumes bit-identically;
* ``REPRO_SAMPLE_TIMEOUT`` converts a pathological sample into a typed
  :class:`~repro.errors.SampleTimeout` instead of a hang;
* ``REPRO_FAULTS=<seed>`` swaps in deterministic adversarial traces.
"""

import os
import time

import pytest

import repro.experiments.common as common
from repro.errors import IncompleteRun, SampleTimeout
from repro.experiments.common import (
    ExperimentSetup,
    _sample_run_to_dict,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
    run_benchmark_suite,
)
from repro.runtime.executor import set_sample_deadline
from repro.workloads import make_workload

SETUP = ExperimentSetup(
    scale="tiny", trace_count=3, invocations=2, trace_duration_ms=800
)
CONFIGS = [("precise", None), ("swv", 8)]


@pytest.fixture(scope="module")
def home():
    workload = make_workload("Home", "tiny")
    environment = calibrate_environment(measure_precise_cycles(workload), SETUP)
    return workload, environment


@pytest.fixture(scope="module")
def reference(home):
    workload, environment = home
    return run_benchmark(workload, "precise", None, "clank", SETUP, environment)


def full_dicts(results):
    """Every field of every sample, metrics and ledger included."""
    return [[_sample_run_to_dict(run) for run in result.runs] for result in results]


class TestWorkerCrashRecovery:
    def test_killed_worker_heals_to_identical_results(
        self, home, reference, monkeypatch, capfd
    ):
        workload, environment = home
        parent = os.getpid()
        real = common._execute_sample

        def killer(spec):
            # Simulate the OOM killer taking one worker mid-sample; the
            # parent (serial retry) is never killed.
            if os.getpid() != parent and spec.trace_index == 1 and spec.invocation == 0:
                os._exit(1)
            return real(spec)

        monkeypatch.setattr(common, "_execute_sample", killer)
        monkeypatch.setenv("REPRO_JOBS", "4")
        healed = run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        assert healed.runs == reference.runs
        err = capfd.readouterr().err
        assert err.count("retrying") == 1  # one aggregated warning
        assert "worker" in err

    def test_deterministic_failure_still_surfaces_typed(
        self, home, monkeypatch, capfd
    ):
        workload, environment = home

        def always_incomplete(spec):
            raise IncompleteRun("sample can never finish", outages=9)

        monkeypatch.setattr(common, "_execute_sample", always_incomplete)
        monkeypatch.setenv("REPRO_JOBS", "4")
        # The pool's failures are retried serially; the retry fails the
        # same way, so the typed error propagates instead of being eaten.
        with pytest.raises(IncompleteRun):
            run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        capfd.readouterr()  # swallow the expected retry warning


class TestResume:
    def test_interrupted_parallel_grid_resumes_bit_identical(
        self, home, monkeypatch, tmp_path
    ):
        workload, environment = home
        monkeypatch.setenv("REPRO_JOBS", "4")
        uninterrupted = run_benchmark_suite(
            workload, CONFIGS, "clank", SETUP, environment
        )

        monkeypatch.setenv("REPRO_RESUME", str(tmp_path))
        # "Interrupt": only the first config finished before the crash.
        run_benchmark_suite(workload, CONFIGS[:1], "clank", SETUP, environment)
        assert len(list(tmp_path.glob("*.json"))) == 1

        resumed = run_benchmark_suite(workload, CONFIGS, "clank", SETUP, environment)
        assert full_dicts(resumed) == full_dicts(uninterrupted)
        assert len(list(tmp_path.glob("*.json"))) == len(CONFIGS)

        # Everything cached now: a third run must not execute any spec.
        monkeypatch.setattr(
            common, "_map_samples",
            lambda specs, jobs: (
                [] if not specs else pytest.fail("resume should skip execution")
            ),
        )
        cached = run_benchmark_suite(workload, CONFIGS, "clank", SETUP, environment)
        assert full_dicts(cached) == full_dicts(uninterrupted)

    def test_torn_resume_file_is_recomputed(self, home, monkeypatch, tmp_path):
        workload, environment = home
        monkeypatch.setenv("REPRO_RESUME", str(tmp_path))
        result = run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        (path,) = tmp_path.glob("*.json")
        path.write_text('{"runs": [{"torn')  # a torn write from a crash
        again = run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        assert again.runs == result.runs

    def test_key_depends_on_environment(self, home):
        workload, environment = home
        key_a = common._resume_key(
            workload.name, workload.scale, "precise", None, "clank",
            SETUP, environment,
        )
        other = common.Environment(
            capacitor_f=environment.capacitor_f * 2,
            watchdog_cycles=environment.watchdog_cycles,
            swing_cycles=environment.swing_cycles,
        )
        key_b = common._resume_key(
            workload.name, workload.scale, "precise", None, "clank",
            SETUP, other,
        )
        assert key_a != key_b  # stale results can never be served


class TestSampleTimeout:
    def test_expired_deadline_raises_typed_timeout(self, home):
        workload, environment = home
        kernel = common.build_anytime(workload, "precise")
        set_sample_deadline(time.monotonic() - 1.0)
        try:
            with pytest.raises(SampleTimeout):
                kernel.run_intermittent(
                    workload.inputs,
                    SETUP.traces()[0],
                    runtime="clank",
                    capacitor=environment.capacitor(),
                    watchdog_cycles=environment.watchdog_cycles,
                )
        finally:
            set_sample_deadline(None)

    def test_env_knob_arms_and_clears_the_deadline(self, home, monkeypatch):
        workload, environment = home
        monkeypatch.setenv("REPRO_SAMPLE_TIMEOUT", "0.0000001")
        with pytest.raises(SampleTimeout):
            run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        # The deadline must not leak into later (untimed) samples.
        monkeypatch.delenv("REPRO_SAMPLE_TIMEOUT")
        from repro.runtime import executor

        assert executor._SAMPLE_DEADLINE is None

    def test_invalid_value_warns_once_and_disables(self, monkeypatch, capfd):
        monkeypatch.setenv("REPRO_SAMPLE_TIMEOUT", "soon")
        monkeypatch.setattr(common, "_timeout_warning_emitted", False)
        assert common.experiment_sample_timeout() is None
        assert common.experiment_sample_timeout() is None
        err = capfd.readouterr().err
        assert err.count("REPRO_SAMPLE_TIMEOUT") == 1


class TestFaultsKnob:
    def test_adversarial_traces_are_deterministic(self, home, reference, monkeypatch):
        workload, environment = home
        monkeypatch.setenv("REPRO_FAULTS", "42")
        first = run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        second = run_benchmark(workload, "precise", None, "clank", SETUP, environment)
        assert first.runs == second.runs
        assert first.runs != reference.runs  # the power really changed

    def test_invalid_seed_warns_once_and_disables(self, monkeypatch, capfd):
        monkeypatch.setenv("REPRO_FAULTS", "lots")
        monkeypatch.setattr(common, "_faults_warning_emitted", False)
        assert common.experiment_faults() is None
        assert common.experiment_faults() is None
        assert capfd.readouterr().err.count("REPRO_FAULTS") == 1
