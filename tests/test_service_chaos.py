"""Host-level chaos: real subprocess servers, real SIGKILLs.

The service chaos harness (:mod:`repro.fault.service_chaos`) kills a
``python -m repro serve`` process at each journal boundary (post-ack
before compute, mid-compute, post-store before the done-marker), tears
journal and store files, and corrupts wire bytes. Its oracle is the
whole robustness claim: every submitted job eventually yields a result
byte-identical to a direct in-process run, the journal drains to zero
pending accepts (no lost jobs), and the store holds exactly one entry
per configuration (no duplicates). These tests run one scenario of
every family plus a small seeded campaign whose report must be
byte-identical across re-runs.
"""

from pathlib import Path

import pytest

from repro.fault.service_chaos import (
    SERVICE_CONFIGS,
    generate_service_scenarios,
    run_service_campaign,
    run_service_scenario,
    service_report_to_json,
)
from repro.service.server import CHAOS_POINTS


@pytest.mark.parametrize("point", CHAOS_POINTS)
def test_sigkill_at_journal_boundary_recovers(point, tmp_path):
    scenario = {
        "index": 0, "kind": "kill", "config": 0, "point": point, "jobs": None,
    }
    assert run_service_scenario(scenario, tmp_path / "scenario") == []


def test_sigkill_mid_compute_under_repro_jobs(tmp_path):
    scenario = {
        "index": 0, "kind": "kill", "config": 1,
        "point": "mid-compute", "jobs": 2,
    }
    assert run_service_scenario(scenario, tmp_path / "scenario") == []


@pytest.mark.parametrize("tear", ("truncate", "garbage"))
def test_torn_journal_still_recovers(tear, tmp_path):
    scenario = {
        "index": 0, "kind": "torn-journal", "config": 0,
        "point": "post-ack", "tear": tear,
    }
    assert run_service_scenario(scenario, tmp_path / "scenario") == []


@pytest.mark.parametrize("tear", ("truncate", "tamper"))
def test_torn_store_is_detected_and_healed(tear, tmp_path):
    scenario = {"index": 0, "kind": "torn-store", "config": 1, "tear": tear}
    assert run_service_scenario(scenario, tmp_path / "scenario") == []


def test_wire_corruption_and_fragmentation_survive(tmp_path):
    for scenario in (
        {"index": 0, "kind": "wire-corrupt", "config": 0,
         "garbage": [0x7B, 0x22, 0xFF, 0x00, 0x9C]},
        {"index": 1, "kind": "wire-fragment", "config": 2, "fragments": 5},
    ):
        assert run_service_scenario(scenario, tmp_path / "scenario") == []


def test_scenario_generation_is_seeded_and_covers_the_families():
    a = generate_service_scenarios(99, 40)
    b = generate_service_scenarios(99, 40)
    assert a == b
    kinds = {s["kind"] for s in a}
    assert "kill" in kinds and len(kinds) >= 3
    points = {s["point"] for s in a if s["kind"] == "kill"}
    assert points == set(CHAOS_POINTS)
    assert all(0 <= s["config"] < len(SERVICE_CONFIGS) for s in a)


def test_small_campaign_passes_and_reports_deterministically(tmp_path):
    first = run_service_campaign(
        seed=11, count=6, workdir=Path(tmp_path / "a")
    )
    assert first["passed"], first["violations"]
    assert first["scenarios"] == 6
    second = run_service_campaign(
        seed=11, count=6, workdir=Path(tmp_path / "b")
    )
    assert service_report_to_json(first) == service_report_to_json(second)
