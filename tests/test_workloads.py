"""Tests for the Table I workloads and the glucose case study."""

import pytest

from repro.core import AnytimeConfig, AnytimeKernel, nrmse
from repro.compiler import evaluate
from repro.workloads import BENCHMARKS, all_workloads, glucose, make_workload
from repro.workloads import conv2d, home, matadd, matmul, netmotion, var
from repro.workloads.data import gaussian_filter, motion_magnitudes, sensor_series, synthetic_image


class TestSuiteStructure:
    def test_all_benchmarks_buildable(self):
        workloads = all_workloads("tiny")
        assert set(workloads) == set(BENCHMARKS)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            make_workload("Quux")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            make_workload("Conv2d", "enormous")

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_kernels_validate(self, name):
        workload = make_workload(name, "tiny")
        workload.kernel.validate()
        assert workload.technique in ("swp", "swv")
        assert workload.decode is not None

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_inputs_fit_arrays(self, name):
        workload = make_workload(name, "tiny")
        for array in workload.kernel.inputs():
            values = workload.inputs[array.name]
            assert len(values) == array.length
            assert all(0 <= v <= array.value_mask for v in values)


class TestWorkloadCorrectness:
    """Every workload's anytime builds converge exactly to the precise
    result on the simulated hardware (tiny scale keeps this fast)."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("bits", [4, 8])
    def test_anytime_converges_exactly(self, name, bits):
        workload = make_workload(name, "tiny")
        reference = workload.decoded_reference()
        kernel = AnytimeKernel(
            workload.kernel, AnytimeConfig(mode=workload.technique, bits=bits)
        )
        run = kernel.run(workload.inputs)
        assert nrmse(reference, workload.decode(run.outputs)) < 1e-9

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_precise_build_matches_reference(self, name):
        workload = make_workload(name, "tiny")
        run = AnytimeKernel(workload.kernel).run(workload.inputs)
        assert workload.decode(run.outputs) == workload.decoded_reference()


class TestAccumulatorBounds:
    def test_matmul_values_cannot_overflow(self):
        n = matmul.SHAPES["paper"]
        bound = matmul.value_bound(n)
        assert n * bound * bound < 2**32

    def test_var_sum_of_squares_fits(self):
        readings = var.generate_readings(8, var.READINGS, seed=0)
        assert max(readings) <= 8191
        assert var.READINGS * max(readings) ** 2 < 2**32

    def test_home_totals_fit(self):
        workload = make_workload("Home", "paper")
        worst = max(workload.inputs["S"]) * home.SWEEPS
        assert worst < 2**32

    def test_netmotion_total_fits(self):
        workload = make_workload("NetMotion", "paper")
        assert sum(workload.inputs["D"]) < 2**32


class TestDataGenerators:
    def test_image_deterministic(self):
        assert synthetic_image(8, 8, 1) == synthetic_image(8, 8, 1)
        assert synthetic_image(8, 8, 1) != synthetic_image(8, 8, 2)

    def test_image_depths(self):
        assert max(synthetic_image(8, 8, 0, depth_bits=8)) <= 255
        deep = synthetic_image(8, 8, 0, depth_bits=16)
        assert max(deep) > 255
        with pytest.raises(ValueError):
            synthetic_image(8, 8, 0, depth_bits=12)

    def test_gaussian_filter_normalized(self):
        taps = gaussian_filter(9)
        assert sum(taps) == 256
        assert taps[40] == max(taps)  # centre tap dominates

    def test_sensor_series_nonnegative(self):
        assert all(v >= 0 for v in sensor_series(50, 1, base=10.0, swing=30.0))

    def test_motion_magnitudes_bounded(self):
        values = motion_magnitudes(100, 2, peak=5000)
        assert all(0 <= v <= 5000 for v in values)


class TestGlucose:
    def test_clinical_series_has_two_dips(self):
        values = glucose.clinical_series(0)
        times = glucose.times_of_day()
        dips = glucose.detected_dips(times, values)
        assert len(dips) >= 2
        # One dip near 14:30, one near 18:30 (paper's clinical data).
        assert any(14.0 <= t <= 15.0 for t in dips)
        assert any(18.0 <= t <= 19.0 for t in dips)

    def test_series_shape(self):
        values = glucose.clinical_series(0)
        assert len(values) == glucose.SERIES_POINTS
        assert all(v >= 30.0 for v in values)

    def test_calibration_roundtrip(self):
        inputs = glucose.reading_inputs(123.0, batch=8, seed=3)
        kernel = glucose.build_kernel(batch=8)
        outputs = evaluate(kernel, inputs)
        value = glucose.decode_reading({"G": outputs["G"]})
        assert value == pytest.approx(123.0, abs=1.0)

    def test_anytime_reading_within_iso_band(self):
        """The paper's claim: 4-bit readings stay within +/-20%."""
        kernel_ir = glucose.build_kernel(batch=8, bits=4)
        anytime = AnytimeKernel(kernel_ir, AnytimeConfig(mode="swp", bits=4))
        for mgdl in (45.0, 80.0, 150.0, 240.0):
            inputs = glucose.reading_inputs(mgdl, batch=8, seed=1)
            cpu = anytime.make_cpu(inputs)

            def cut(target, cpu=cpu):
                cpu.halted = True  # accept the first (MSb) pass only

            cpu.skim_hook = cut
            cpu.run()
            value = glucose.decode_reading(anytime.read_outputs(cpu))
            assert glucose.within_iso_band(mgdl, value), (mgdl, value)

    def test_counts_saturate(self):
        assert glucose.to_sensor_counts(1e9) == 65535
        assert glucose.to_sensor_counts(-5) == 0

    def test_iso_band(self):
        assert glucose.within_iso_band(100, 119)
        assert not glucose.within_iso_band(100, 121)
        assert glucose.within_iso_band(0, 0)
