"""Tests for quality-constrained skim points (library extension).

With ``min_quality_level = k``, a restore only accepts the approximate
result after at least ``k`` subword phases completed; below the
threshold, the device resumes refining through outages. Raising the
threshold trades forward progress for accuracy — the paper's
flexibility argument, made into a runtime knob.
"""

import pytest

from repro.core import AnytimeConfig, AnytimeKernel, nrmse
from repro.power import Capacitor, EnergyModel, PowerSupply, wifi_trace
from repro.runtime import ClankRuntime, IntermittentExecutor, SkimRegister
from repro.workloads import make_workload


class TestRegisterSemantics:
    def test_default_is_paper_behaviour(self):
        skim = SkimRegister()
        skim.set(10)
        assert skim.armed

    def test_below_threshold_not_armed(self):
        skim = SkimRegister(min_quality_level=2)
        skim.set(10)
        assert not skim.armed
        skim.set(10)
        assert skim.armed

    def test_clear_resets_quality(self):
        skim = SkimRegister(min_quality_level=2)
        skim.set(10)
        skim.set(10)
        skim.clear()
        skim.set(10)
        assert not skim.armed

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SkimRegister(min_quality_level=0)


class TestQualityConstrainedRuns:
    def run_with_threshold(self, min_level):
        workload = make_workload("MatAdd", "tiny")  # 4 planes at 8-bit
        kernel = AnytimeKernel(workload.kernel, AnytimeConfig(mode="swv", bits=8))
        cpu = kernel.make_cpu(workload.inputs)
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=6),
            Capacitor(capacitance_f=0.05e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        runtime = ClankRuntime(
            watchdog_cycles=300, skim=SkimRegister(min_quality_level=min_level)
        )
        result = IntermittentExecutor(cpu, supply, runtime).run(max_wall_ms=60_000)
        assert result.completed
        reference = workload.decoded_reference()
        error = nrmse(reference, workload.decode(kernel.read_outputs(cpu)))
        return result, error

    def test_higher_threshold_gives_better_quality(self):
        eager, eager_error = self.run_with_threshold(1)
        picky, picky_error = self.run_with_threshold(3)
        assert eager.skim_taken
        assert picky_error <= eager_error
        # The pickier device worked longer for its quality.
        assert picky.active_cycles >= eager.active_cycles

    def test_threshold_beyond_phases_runs_to_precise(self):
        # MatAdd 8-bit has 3 skim points (4 planes): a threshold of 99
        # can never be met, so the run refines to the exact result.
        result, error = self.run_with_threshold(99)
        assert not result.skim_taken
        assert error < 1e-9


class TestLivelockDetection:
    def test_starved_clank_raises_diagnostic(self):
        """A capacitor smaller than restore+watchdog costs can never make
        durable progress; the executor diagnoses it instead of spinning."""
        workload = make_workload("MatAdd", "tiny")
        kernel = AnytimeKernel(workload.kernel)  # precise: no skim escape
        cpu = kernel.make_cpu(workload.inputs)
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=6),
            Capacitor(capacitance_f=0.005e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        runtime = ClankRuntime(watchdog_cycles=24_000)  # longer than a charge
        with pytest.raises(RuntimeError, match="livelock"):
            IntermittentExecutor(cpu, supply, runtime).run(max_wall_ms=2_000_000)
