"""Unit and property tests for the memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Memory,
    MemoryError_,
    NVM_BASE,
    Region,
    SRAM_BASE,
    default_memory,
    word_range,
)


class TestScalarAccess:
    def test_word_roundtrip(self):
        mem = default_memory()
        mem.store_word(0x100, 0xDEADBEEF)
        assert mem.load_word(0x100) == 0xDEADBEEF

    def test_word_is_little_endian(self):
        mem = default_memory()
        mem.store_word(0x100, 0x11223344)
        assert mem.load_byte(0x100) == 0x44
        assert mem.load_byte(0x103) == 0x11

    def test_half_roundtrip(self):
        mem = default_memory()
        mem.store_half(0x10, 0xBEEF)
        assert mem.load_half(0x10) == 0xBEEF

    def test_byte_roundtrip(self):
        mem = default_memory()
        mem.store_byte(0x10, 0xAB)
        assert mem.load_byte(0x10) == 0xAB

    def test_store_masks_to_width(self):
        mem = default_memory()
        mem.store_byte(0x10, 0x1FF)
        assert mem.load_byte(0x10) == 0xFF
        mem.store_half(0x20, 0x1FFFF)
        assert mem.load_half(0x20) == 0xFFFF

    def test_unmapped_access_raises(self):
        mem = default_memory()
        with pytest.raises(MemoryError_):
            mem.load_word(0x5000_0000)

    def test_access_straddling_region_end_raises(self):
        mem = Memory([Region("tiny", 0, 8, volatile=False)])
        with pytest.raises(MemoryError_):
            mem.load_word(6)


class TestBulkAccess:
    def test_words_roundtrip(self):
        mem = default_memory()
        values = [1, 2, 3, 0xFFFFFFFF]
        mem.write_words(0x200, values)
        assert mem.read_words(0x200, 4) == values

    def test_halves_roundtrip(self):
        mem = default_memory()
        values = [10, 20, 0xFFFF]
        mem.write_halves(0x300, values)
        assert mem.read_halves(0x300, 3) == values

    def test_bytes_roundtrip(self):
        mem = default_memory()
        mem.write_bytes(0x400, b"hello")
        assert mem.read_bytes(0x400, 5) == b"hello"

    def test_word_range(self):
        assert word_range(0x100, 4) == (0x100, 0x110)


class TestVolatility:
    def test_sram_cleared_on_power_loss(self):
        mem = default_memory()
        mem.store_word(SRAM_BASE + 0x10, 1234)
        mem.power_loss()
        assert mem.load_word(SRAM_BASE + 0x10) == 0

    def test_nvm_survives_power_loss(self):
        mem = default_memory()
        mem.store_word(NVM_BASE + 0x10, 1234)
        mem.power_loss()
        assert mem.load_word(NVM_BASE + 0x10) == 1234

    def test_is_nonvolatile(self):
        mem = default_memory()
        assert mem.is_nonvolatile(NVM_BASE + 4)
        assert not mem.is_nonvolatile(SRAM_BASE + 4)

    def test_volatile_snapshot_roundtrip(self):
        mem = default_memory()
        mem.store_word(SRAM_BASE, 42)
        snap = mem.snapshot_volatile()
        mem.power_loss()
        assert mem.load_word(SRAM_BASE) == 0
        mem.restore_volatile(snap)
        assert mem.load_word(SRAM_BASE) == 42

    def test_nonvolatile_snapshot_roundtrip(self):
        mem = default_memory()
        mem.store_word(NVM_BASE + 8, 77)
        snap = mem.snapshot_nonvolatile()
        assert set(snap) == {"nvm"}
        mem.store_word(NVM_BASE + 8, 99)
        mem.restore_nonvolatile(snap)
        assert mem.load_word(NVM_BASE + 8) == 77

    def test_restore_nonvolatile_preserves_buffer_identity(self):
        mem = default_memory()
        nvm = mem.region("nvm")
        buffer = nvm.data
        snap = mem.snapshot_nonvolatile()
        mem.store_word(NVM_BASE, 5)
        mem.restore_nonvolatile(snap)
        assert nvm.data is buffer
        assert mem.load_word(NVM_BASE) == 0

    def test_region_lookup_by_name(self):
        mem = default_memory()
        assert mem.region("nvm").volatile is False
        assert mem.region("sram").volatile is True

    def test_clear_preserves_buffer_identity(self):
        """clear() must zero in place: decoded handlers cache ``data``,
        so swapping in a fresh bytearray would desynchronize them."""
        region = Region("scratch", 0, 64, volatile=True)
        buffer = region.data
        region.data[0] = 0xAB
        region.clear()
        assert region.data is buffer
        assert not any(buffer)

    def test_power_loss_preserves_buffer_identity(self):
        mem = default_memory()
        sram = mem.region("sram")
        buffer = sram.data
        mem.store_word(SRAM_BASE + 8, 0xFFFF)
        mem.power_loss()
        assert sram.data is buffer
        assert mem.load_word(SRAM_BASE + 8) == 0

    def test_restore_volatile_preserves_buffer_identity(self):
        mem = default_memory()
        sram = mem.region("sram")
        buffer = sram.data
        mem.store_word(SRAM_BASE, 7)
        snap = mem.snapshot_volatile()
        mem.power_loss()
        mem.restore_volatile(snap)
        assert sram.data is buffer
        assert mem.load_word(SRAM_BASE) == 7


class TestMemoryProperties:
    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 1000))
    def test_word_roundtrip_property(self, value, offset):
        mem = default_memory()
        addr = NVM_BASE + offset * 4
        mem.store_word(addr, value)
        assert mem.load_word(addr) == value

    @given(st.binary(min_size=0, max_size=256), st.integers(0, 100))
    def test_bytes_roundtrip_property(self, data, offset):
        mem = default_memory()
        mem.write_bytes(offset, data)
        assert mem.read_bytes(offset, len(data)) == data

    @given(st.lists(st.integers(0, 0xFFFF), max_size=64))
    def test_halves_roundtrip_property(self, values):
        mem = default_memory()
        mem.write_halves(0x1000, values)
        assert mem.read_halves(0x1000, len(values)) == values
