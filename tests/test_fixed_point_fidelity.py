"""The paper's fixed-point conversion claim, checked per workload.

"These applications originally use floating point operations; we
converted these to fixed-point, keeping the error between the two to
under 1%." Each test computes the floating-point version of a workload
and checks the fixed-point pipeline's decoded output stays within 1%.
"""

import math

import numpy as np
import pytest

from repro.compiler import evaluate
from repro.core import mean_relative_error, nrmse
from repro.workloads import glucose, make_workload


def decoded(workload):
    result = evaluate(workload.kernel, workload.inputs)
    outputs = {a.name: result[a.name] for a in workload.kernel.outputs()}
    return np.array(workload.decode(outputs), dtype=float)


class TestFloatVsFixed:
    def test_conv2d_matches_float_convolution(self):
        workload = make_workload("Conv2d", "tiny")
        side = workload.params["out_side"]
        k = workload.params["k"]
        in_side = workload.params["in_side"]
        image = np.array(workload.inputs["IMG"], dtype=float).reshape(in_side, in_side)
        taps = np.array(workload.inputs["F"], dtype=float).reshape(k, k) / 256.0

        reference = np.zeros((side, side))
        for y in range(side):
            for x in range(side):
                reference[y, x] = float(np.sum(image[y:y + k, x:x + k] * taps))
        reference = reference.ravel() / 256.0  # 16-bit depth -> display levels

        fixed = decoded(workload)
        assert nrmse(reference, fixed) < 1.0  # < 1% of range

    def test_home_matches_float_average(self):
        workload = make_workload("Home", "tiny")
        channels = workload.params["channels"]
        sweeps = workload.params["sweeps"]
        samples = np.array(workload.inputs["S"], dtype=float).reshape(sweeps, channels)
        reference = samples.mean(axis=0) / (1 << 21)  # decode's RAW_SHIFT
        fixed = decoded(workload)
        assert mean_relative_error(reference, fixed) < 1.0

    def test_netmotion_matches_float_sum(self):
        workload = make_workload("NetMotion", "tiny")
        reference = sum(workload.inputs["D"]) / 1024.0
        fixed = decoded(workload)[0]
        assert abs(fixed - reference) / reference < 0.01

    def test_var_matches_float_variance(self):
        workload = make_workload("Var", "tiny")
        n = workload.params["n"]
        sensors = workload.params["sensors"]
        readings = np.array(workload.inputs["X"], dtype=float).reshape(sensors, n)
        # The device uses truncating shifts; the float reference uses a
        # floor-mean to match its definition of variance.
        fixed = decoded(workload)
        for s in range(sensors):
            data = readings[s]
            reference = float(np.mean(data**2) - np.mean(data) ** 2)
            # Integer variance keeps a mean-squared rounding residual of
            # up to ~mean/variance; with rounded means this stays ~1%.
            assert abs(fixed[s] - reference) / max(reference, 1.0) < 0.015, s

    def test_glucose_calibration_error_under_iso(self):
        """Fixed-point calibration stays well under the +/-20% ISO band
        for the full clinical range (paper Section II)."""
        kernel = glucose.build_kernel(batch=16)
        for mgdl in np.linspace(35, 250, 12):
            inputs = glucose.reading_inputs(float(mgdl), batch=16, seed=1)
            outputs = evaluate(kernel, inputs)
            measured = glucose.decode_reading({"G": outputs["G"]})
            assert abs(measured - mgdl) / mgdl < 0.01
