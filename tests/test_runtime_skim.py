"""Tests for skim-point semantics and the executor's skim handling."""

import pytest

from repro.isa import assemble
from repro.power import Capacitor, EnergyModel, PowerSupply, constant_trace, square_trace
from repro.runtime import (
    ClankRuntime,
    IntermittentExecutor,
    NVPRuntime,
    SkimRegister,
)
from repro.sim import CPU, default_memory


class TestSkimRegister:
    def test_initially_disarmed(self):
        skim = SkimRegister()
        assert not skim.armed
        assert skim.peek() is None

    def test_set_and_consume(self):
        skim = SkimRegister()
        skim.set(42)
        assert skim.armed
        assert skim.peek() == 42
        assert skim.consume() == 42
        assert not skim.armed

    def test_consume_unarmed_raises(self):
        with pytest.raises(RuntimeError):
            SkimRegister().consume()

    def test_reset_overwrites(self):
        skim = SkimRegister()
        skim.set(1)
        skim.set(2)
        assert skim.consume() == 2
        assert skim.set_count == 2
        assert skim.taken_count == 1

    def test_clear(self):
        skim = SkimRegister()
        skim.set(7)
        skim.clear()
        assert not skim.armed
        assert skim.taken_count == 0


# A program shaped like the paper's Listing 2: a long MSb phase that
# arms a skim point, then a long LSb refinement phase. OUT records how
# far we got: 1 after the MSb phase, 2 after the LSb phase.
TWO_PHASE_SOURCE = """
.equ OUT, 0x200
    MOV R6, #0
PHASE1:
    ADD R6, R6, #1
    CMP R6, #{phase_cycles}
    BLT PHASE1
    MOV R5, #1
    MOV R4, #OUT
    STR R5, [R4, #0]
    SKM END
    MOV R6, #0
PHASE2:
    ADD R6, R6, #1
    CMP R6, #{phase_cycles}
    BLT PHASE2
    MOV R5, #2
    STR R5, [R4, #0]
END:
    HALT
"""


def two_phase_cpu(phase_cycles=2000):
    cpu = CPU(assemble(TWO_PHASE_SOURCE.format(phase_cycles=phase_cycles)), default_memory())
    return cpu


class TestSkimUnderIntermittency:
    def test_ample_power_reaches_precise_result(self):
        """With no outage after the skim point, the program refines to
        the precise result (skim point is never taken)."""
        cpu = two_phase_cpu()
        supply = PowerSupply(constant_trace(50e-3, 100_000), Capacitor(), EnergyModel())
        result = IntermittentExecutor(cpu, supply, ClankRuntime()).run()
        assert result.completed
        assert not result.skim_taken
        assert cpu.memory.load_word(0x200) == 2

    @pytest.mark.parametrize("runtime_cls", [ClankRuntime, NVPRuntime])
    def test_outage_after_skim_accepts_approximate_result(self, runtime_cls):
        """An outage with the register armed skips the refinement phase:
        the approximate (phase-1) output is accepted as-is."""
        # Tiny on-periods: the device dies between the phases.
        cpu = two_phase_cpu(phase_cycles=120_000)
        supply = PowerSupply(
            square_trace(1.2e-3, on_ms=15, off_ms=120, periods=50),
            Capacitor(v_initial=3.0),
            EnergyModel(),
        )
        result = IntermittentExecutor(cpu, supply, runtime_cls()).run()
        assert result.completed
        assert result.skim_taken
        assert cpu.memory.load_word(0x200) == 1  # approximate output

    def test_skim_gives_forward_progress_speedup(self):
        """Accepting the approximate result finishes much earlier than
        refining to the precise result on the same weak supply."""
        trace = square_trace(1.2e-3, on_ms=15, off_ms=120, periods=50)

        skim_cpu = two_phase_cpu(phase_cycles=120_000)
        skim_result = IntermittentExecutor(
            skim_cpu,
            PowerSupply(trace, Capacitor(v_initial=3.0), EnergyModel()),
            NVPRuntime(),
        ).run()

        precise_source = TWO_PHASE_SOURCE.replace("SKM END\n", "")
        precise_cpu = CPU(
            assemble(precise_source.format(phase_cycles=120_000)), default_memory()
        )
        precise_result = IntermittentExecutor(
            precise_cpu,
            PowerSupply(trace, Capacitor(v_initial=3.0), EnergyModel()),
            NVPRuntime(),
        ).run()

        assert skim_result.completed and precise_result.completed
        assert skim_result.skim_taken
        assert precise_cpu.memory.load_word(0x200) == 2
        assert skim_result.wall_ms < precise_result.wall_ms / 1.5

    def test_executor_result_bookkeeping(self):
        cpu = two_phase_cpu(phase_cycles=500)
        supply = PowerSupply(constant_trace(50e-3, 100_000), Capacitor(), EnergyModel())
        result = IntermittentExecutor(cpu, supply, ClankRuntime()).run()
        assert result.on_ms > 0
        assert result.active_cycles > 0
        assert result.wall_ms == result.on_ms + result.off_ms
        assert result.wall_seconds == pytest.approx(result.wall_ms / 1000)

    def test_timeout_reported(self):
        cpu = CPU(assemble("LOOP: B LOOP"), default_memory())
        supply = PowerSupply(constant_trace(50e-3, 100_000), Capacitor(), EnergyModel())
        result = IntermittentExecutor(cpu, supply, NVPRuntime()).run(max_wall_ms=50)
        assert result.timed_out
        assert not result.completed
