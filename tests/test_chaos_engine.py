"""Units of the chaos engine: fault plans, the trace fuzzer, the chaos
supply, the consistency oracle, and the restore-path edge cases the
sampled traces never deliberately exercise (outage in the exact
checkpoint-commit tick, outage at cycle 0 after a restore, an all-dead
trace, an empty program).
"""

import pytest

from repro.errors import ConsistencyViolation, ProgressStall
from repro.fault.campaign import Scenario, _Caches, run_scenario
from repro.fault.fuzz import burst_outage_trace, fuzzed_traces, knife_edge_trace
from repro.fault.oracle import check_outputs, compute_golden
from repro.fault.plan import (
    BitFlip,
    FaultPlan,
    OutageAtCheckpoint,
    OutageAtCycle,
    OutageAtRestore,
    OutageAtSkimArm,
)
from repro.isa import assemble
from repro.power import Capacitor, EnergyModel
from repro.power.supply import SupplyExhausted
from repro.power.trace import PowerTrace
from repro.runtime import ClankRuntime, IntermittentExecutor
from repro.sim import CPU, default_memory


def scenario_with(plan, runtime="clank", workload="Home", mode="precise",
                  trace_kind="burst", trace_seed=11, index=0):
    """A hand-built scenario around one specific fault plan."""
    return Scenario(
        index=index, runtime=runtime, workload=workload, mode=mode,
        trace_kind=trace_kind, trace_seed=trace_seed, plan=plan,
    )


class TestFaultPlan:
    def test_at_most_one_torn_commit(self):
        with pytest.raises(ValueError):
            FaultPlan(checkpoint_outages=[
                OutageAtCheckpoint(ordinal=1, torn=True),
                OutageAtCheckpoint(ordinal=2, torn=True),
            ])

    def test_describe_covers_every_event(self):
        plan = FaultPlan(
            cycle_outages=[OutageAtCycle(at_cycle=100)],
            checkpoint_outages=[OutageAtCheckpoint(ordinal=2, torn=True)],
            restore_outages=[OutageAtRestore(ordinal=1)],
            skim_arm_outages=[OutageAtSkimArm(ordinal=1)],
            bit_flips=[BitFlip(at_outage=1, target="scratch", offset=3, bit=5)],
        )
        kinds = [entry["kind"] for entry in plan.describe()]
        assert kinds == [
            "outage-at-cycle", "outage-at-checkpoint", "outage-at-restore",
            "outage-at-skim-arm", "bit-flip",
        ]

    def test_indexed_views(self):
        plan = FaultPlan(
            checkpoint_outages=[OutageAtCheckpoint(ordinal=3)],
            bit_flips=[BitFlip(at_outage=2), BitFlip(at_outage=2, bit=4)],
        )
        assert set(plan.checkpoint_events()) == {3}
        assert len(plan.flips_by_outage()[2]) == 2
        assert plan.cycle_targets() == []


class TestFuzzedTraces:
    def test_deterministic_per_seed(self):
        a = burst_outage_trace(7)
        b = burst_outage_trace(7)
        assert a.samples == b.samples
        assert knife_edge_trace(7).samples == knife_edge_trace(7).samples

    def test_seeds_differ(self):
        assert burst_outage_trace(1).samples != burst_outage_trace(2).samples

    def test_duration_honoured(self):
        assert len(burst_outage_trace(3, duration_ms=500)) == 500
        assert len(knife_edge_trace(3, duration_ms=250)) == 250

    def test_fuzzed_traces_mix_both_kinds(self):
        traces = fuzzed_traces(5, count=6)
        assert len(traces) == 6
        names = {trace.name.split("-")[0] for trace in traces}
        assert names == {"burst", "knife"}


class TestOracle:
    def test_golden_matches_continuous_run(self, tiny_home):
        workload, kernel, golden = tiny_home
        outputs = kernel.run(workload.inputs).outputs
        check_outputs(outputs, golden, skim_taken=False, consumed_levels=[])

    def test_detects_corruption(self, tiny_home):
        workload, kernel, golden = tiny_home
        outputs = {k: list(v) for k, v in kernel.run(workload.inputs).outputs.items()}
        name = sorted(outputs)[0]
        outputs[name][0] ^= 1
        with pytest.raises(ConsistencyViolation) as exc:
            check_outputs(outputs, golden, skim_taken=False, consumed_levels=[])
        assert exc.value.invariant == "output-golden"

    def test_skim_accepts_any_reachable_state(self, tiny_home):
        _workload, _kernel, golden = tiny_home
        # Any recorded post-arm output state is a legal skim result.
        post_arm = [s for level, s in golden.output_states if level >= 1]
        assert post_arm, "golden run must arm at least one skim point"
        check_outputs(
            {k: list(v) for k, v in post_arm[0].items()},
            golden, skim_taken=True, consumed_levels=[1],
        )

    def test_skim_rejects_unreachable_state(self, tiny_home):
        _workload, _kernel, golden = tiny_home
        bogus = {k: [v ^ 0x5A5A for v in vals] for k, vals in golden.outputs.items()}
        with pytest.raises(ConsistencyViolation) as exc:
            check_outputs(bogus, golden, skim_taken=True, consumed_levels=[1])
        assert exc.value.invariant == "output-bounds"

    @pytest.fixture(scope="class")
    def tiny_home(self):
        caches = _Caches()
        workload, kernel, golden = caches.resolve("Home", "anytime")
        return workload, kernel, golden


class TestRestoreEdgeCases:
    """The nasty corners the satellite checklist names explicitly."""

    def test_outage_in_exact_checkpoint_commit_tick(self):
        for ordinal in (1, 2, 3):
            plan = FaultPlan(
                checkpoint_outages=[OutageAtCheckpoint(ordinal=ordinal)]
            )
            row = run_scenario(scenario_with(plan))
            assert row["outcome"] == "completed", row

    def test_torn_commit_is_survived_by_shipped_clank(self):
        plan = FaultPlan(
            checkpoint_outages=[OutageAtCheckpoint(ordinal=1, torn=True)]
        )
        row = run_scenario(scenario_with(plan))
        assert row["outcome"] == "completed", row
        assert row["injected"]["torn_commits"] == 1

    def test_outage_at_cycle_zero_of_restore(self):
        # Power fails again in the very tick the restore runs in, for
        # several consecutive restores: each reboot must still land on a
        # committed checkpoint and a legal PC, and the run completes.
        plan = FaultPlan(restore_outages=[OutageAtRestore(ordinal=1)])
        row = run_scenario(scenario_with(plan))
        assert row["outcome"] == "completed", row

    def test_outage_between_skim_arm_and_nvm_store(self):
        plan = FaultPlan(skim_arm_outages=[OutageAtSkimArm(ordinal=1)])
        row = run_scenario(scenario_with(plan, mode="anytime"))
        assert row["outcome"] in ("completed", "completed-skim"), row

    def test_all_dead_trace_is_a_typed_stall(self):
        cpu = CPU(assemble("    HALT\n"), default_memory())
        from repro.fault.injectors import ChaosSupply

        supply = ChaosSupply(
            PowerTrace([0.0] * 50, name="dead"),
            Capacitor(v_initial=0.0),
            EnergyModel(),
        )
        executor = IntermittentExecutor(cpu, supply, ClankRuntime())
        with pytest.raises(SupplyExhausted):
            executor.run(max_wall_ms=10_000)
        # ... and SupplyExhausted is a ProgressStall, so the campaign
        # files it under "stall", not "violation".
        assert issubclass(SupplyExhausted, ProgressStall)

    def test_empty_program_completes(self):
        cpu = CPU(assemble("    HALT\n"), default_memory())
        from repro.fault.injectors import ChaosSupply

        supply = ChaosSupply(
            burst_outage_trace(3), Capacitor(v_initial=3.0), EnergyModel()
        )
        supply.schedule_cycle_outages([1])
        executor = IntermittentExecutor(cpu, supply, ClankRuntime())
        result = executor.run(max_wall_ms=100_000)
        assert result.completed
        assert cpu.halted

    def test_scratch_flip_is_invisible(self):
        plan = FaultPlan(
            cycle_outages=[OutageAtCycle(at_cycle=500)],
            bit_flips=[BitFlip(at_outage=1, target="scratch", offset=9, bit=3)],
        )
        row = run_scenario(scenario_with(plan))
        assert row["outcome"] == "completed", row
        assert row["output_checked"] is True
        assert row["injected"]["bit_flips"] == 1

    def test_data_flip_waives_output_checks_only(self):
        plan = FaultPlan(
            cycle_outages=[OutageAtCycle(at_cycle=500)],
            bit_flips=[BitFlip(at_outage=1, target="data", offset=5, bit=2)],
        )
        row = run_scenario(scenario_with(plan))
        # Mechanical invariants still hold; output equality is waived.
        assert row["outcome"] in ("completed", "completed-skim"), row
        assert row["output_checked"] is False
