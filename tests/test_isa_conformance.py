"""ISA conformance: multi-word arithmetic, flag chains, edge cases.

Firmware relies on exact carry/borrow chaining (64-bit arithmetic via
ADC/SBC) and shift edge semantics; these tests pin them down.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import assemble, to_signed
from repro.sim import CPU, default_memory

MASK32 = 0xFFFFFFFF
u32 = st.integers(0, MASK32)
u64 = st.integers(0, (1 << 64) - 1)


def run(source, setup=None):
    cpu = CPU(assemble(source), default_memory())
    if setup:
        setup(cpu)
    cpu.run()
    return cpu


# 64-bit add: (R1:R0) + (R3:R2) -> (R5:R4)
ADD64 = """
    ADD R4, R0, R2
    ADC R5, R1, R3
    HALT
"""

# 64-bit subtract: (R1:R0) - (R3:R2) -> (R5:R4)
SUB64 = """
    SUB R4, R0, R2
    SBC R5, R1, R3
    HALT
"""


class TestMultiWordArithmetic:
    @settings(deadline=None, max_examples=60)
    @given(u64, u64)
    def test_add64_matches_python(self, a, b):
        def setup(cpu):
            cpu.regs[0] = a & MASK32
            cpu.regs[1] = a >> 32
            cpu.regs[2] = b & MASK32
            cpu.regs[3] = b >> 32

        cpu = run(ADD64, setup)
        got = (cpu.regs[5] << 32) | cpu.regs[4]
        assert got == (a + b) & ((1 << 64) - 1)

    @settings(deadline=None, max_examples=60)
    @given(u64, u64)
    def test_sub64_matches_python(self, a, b):
        def setup(cpu):
            cpu.regs[0] = a & MASK32
            cpu.regs[1] = a >> 32
            cpu.regs[2] = b & MASK32
            cpu.regs[3] = b >> 32

        cpu = run(SUB64, setup)
        got = (cpu.regs[5] << 32) | cpu.regs[4]
        assert got == (a - b) & ((1 << 64) - 1)


class TestShiftEdges:
    def test_shift_by_zero_is_identity(self):
        cpu = run("MOV R0, #0xABC\nLSL R1, R0, #0\nLSR R2, R0, #0\nASR R3, R0, #0\nHALT")
        assert cpu.regs[1] == cpu.regs[2] == cpu.regs[3] == 0xABC

    def test_shift_by_32_clears(self):
        def setup(cpu):
            cpu.regs[0] = 0xDEADBEEF
        cpu = run("LSL R1, R0, #32\nLSR R2, R0, #32\nHALT", setup)
        assert cpu.regs[1] == 0
        assert cpu.regs[2] == 0

    def test_asr_by_32_propagates_sign(self):
        def setup(cpu):
            cpu.regs[0] = 0x80000000
        cpu = run("ASR R1, R0, #32\nHALT", setup)
        assert cpu.regs[1] == MASK32

    @given(u32, st.integers(0, 31))
    def test_shift_register_amount(self, value, amount):
        def setup(cpu):
            cpu.regs[0] = value
            cpu.regs[1] = amount
        cpu = run("LSR R2, R0, R1\nHALT", setup)
        assert cpu.regs[2] == value >> amount


class TestFlagChains:
    def test_tst_sets_zero_without_writing(self):
        def setup(cpu):
            cpu.regs[0] = 0xF0
            cpu.regs[1] = 0x0F
        cpu = run("TST R0, R1\nHALT", setup)
        assert cpu.flags.z
        assert cpu.regs[0] == 0xF0

    def test_cmn_detects_negated_equality(self):
        def setup(cpu):
            cpu.regs[0] = 5
            cpu.regs[1] = (-5) & MASK32
        cpu = run("CMN R0, R1\nHALT", setup)
        assert cpu.flags.z

    def test_overflow_flag_on_signed_boundaries(self):
        def setup(cpu):
            cpu.regs[0] = 0x7FFFFFFF
        cpu = run("ADD R1, R0, #1\nHALT", setup)
        assert cpu.flags.v
        assert cpu.flags.n

    def test_sbc_borrow_chain(self):
        # 0x1_00000000 - 1 = 0xFFFFFFFF: low subtract borrows.
        def setup(cpu):
            cpu.regs[0] = 0
            cpu.regs[1] = 1
            cpu.regs[2] = 1
            cpu.regs[3] = 0
        cpu = run(SUB64, setup)
        assert cpu.regs[4] == MASK32
        assert cpu.regs[5] == 0

    @given(u32, u32)
    def test_branch_after_sub_matches_comparison(self, a, b):
        """SUB-set flags drive conditional branches exactly like CMP."""
        source = """
        SUB R2, R0, R1
        BGE GE
        MOV R3, #0
        B DONE
        GE: MOV R3, #1
        DONE: HALT
        """
        def setup(cpu):
            cpu.regs[0] = a
            cpu.regs[1] = b
        cpu = run(source, setup)
        assert cpu.regs[3] == (1 if to_signed(a) >= to_signed(b) else 0)


class TestHaltAndPc:
    def test_bx_to_arbitrary_index(self):
        cpu = run("MOV R0, #3\nBX R0\nMOV R1, #9\nHALT")
        assert cpu.regs[1] == 0  # the MOV at index 2 was skipped

    def test_nested_calls(self):
        source = """
            BL OUTER
            HALT
        OUTER:
            MOV R6, LR
            BL INNER
            MOV LR, R6
            ADD R0, R0, #10
            BX LR
        INNER:
            ADD R0, R0, #1
            BX LR
        """
        cpu = run(source)
        assert cpu.regs[0] == 11
