"""The typed error hierarchy (``repro.errors``).

Every failure the executors/harness raise must be a ``ReproError``
subclass so callers can catch by meaning instead of string-matching
bare RuntimeErrors — and the messages must carry machine-readable
context (cycle, pc, invariant) for post-mortems.
"""

import pytest

from repro.errors import (
    ConsistencyViolation,
    IllegalRestoreError,
    IncompleteRun,
    ProgressStall,
    ReproError,
    SampleTimeout,
    SkimStateError,
    SupplyStateError,
    TornCheckpointError,
)
from repro.power.supply import SupplyExhausted


class TestHierarchy:
    def test_everything_is_a_repro_error_and_a_runtime_error(self):
        for cls in (
            ConsistencyViolation, TornCheckpointError, IllegalRestoreError,
            ProgressStall, IncompleteRun, SampleTimeout, SkimStateError,
            SupplyStateError, SupplyExhausted,
        ):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, RuntimeError)

    def test_consistency_subtypes(self):
        assert issubclass(TornCheckpointError, ConsistencyViolation)
        assert issubclass(IllegalRestoreError, ConsistencyViolation)

    def test_supply_exhausted_is_a_progress_stall(self):
        # A dead harvest trace is a (graceful) forward-progress stall,
        # so campaign/harness code can treat both with one except.
        assert issubclass(SupplyExhausted, ProgressStall)

    def test_legacy_catch_still_works(self):
        # Pre-existing callers catching RuntimeError keep working.
        with pytest.raises(RuntimeError):
            raise IncompleteRun("sample missed its deadline")


class TestContextFormatting:
    def test_context_is_appended_sorted(self):
        err = ReproError("boom", pc=12, cycle=340)
        assert str(err) == "boom [cycle=340, pc=12]"
        assert err.context == {"pc": 12, "cycle": 340}

    def test_no_context_is_plain(self):
        assert str(ReproError("boom")) == "boom"

    def test_violation_invariant_attribute(self):
        err = ConsistencyViolation("bad", invariant="atomic-commit", ordinal=2)
        assert err.invariant == "atomic-commit"
        assert "ordinal=2" in str(err)

    def test_torn_checkpoint_default_invariant(self):
        assert TornCheckpointError("torn").invariant == "atomic-commit"

    def test_illegal_restore_default_invariant(self):
        assert IllegalRestoreError("bad pc").invariant == "legal-restore-pc"
