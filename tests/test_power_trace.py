"""Unit tests for power traces and the harvester synthesizer."""

import pytest
from hypothesis import given, strategies as st

from repro.power import (
    PowerTrace,
    concat,
    constant_trace,
    paper_traces,
    square_trace,
    wifi_trace,
)


class TestPowerTrace:
    def test_negative_samples_clamped(self):
        trace = PowerTrace([-1.0, 2.0])
        assert trace[0] == 0.0
        assert trace[1] == 2.0

    def test_power_at_wraps(self):
        trace = PowerTrace([1.0, 2.0, 3.0])
        assert trace.power_at(0) == 1.0
        assert trace.power_at(3) == 1.0
        assert trace.power_at(4) == 2.0

    def test_empty_trace_yields_zero(self):
        trace = PowerTrace([])
        assert trace.power_at(5) == 0.0
        assert trace.mean_power == 0.0

    def test_energy_at_integrates_one_ms(self):
        trace = PowerTrace([2.0])
        assert trace.energy_at(0) == pytest.approx(2.0e-3)

    def test_mean_and_peak(self):
        trace = PowerTrace([1.0, 3.0])
        assert trace.mean_power == 2.0
        assert trace.peak_power == 3.0

    def test_scaled(self):
        trace = PowerTrace([1.0, 2.0]).scaled(0.5)
        assert trace.samples == [0.5, 1.0]

    def test_slice(self):
        trace = PowerTrace([1.0, 2.0, 3.0, 4.0]).slice_ms(1, 3)
        assert trace.samples == [2.0, 3.0]

    def test_duration(self):
        assert PowerTrace([0.0] * 100).duration_ms == 100.0

    def test_csv_roundtrip(self):
        trace = PowerTrace([1e-6, 2.5e-6, 0.0])
        restored = PowerTrace.from_csv(trace.to_csv())
        assert restored.samples == pytest.approx(trace.samples)

    def test_csv_bad_header_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace.from_csv("a,b\n1,2\n")

    @given(st.lists(st.floats(0, 1e-3, allow_nan=False), min_size=1, max_size=50))
    def test_csv_roundtrip_property(self, samples):
        trace = PowerTrace(samples)
        assert PowerTrace.from_csv(trace.to_csv()).samples == pytest.approx(trace.samples)


class TestGenerators:
    def test_constant_trace(self):
        trace = constant_trace(1e-3, 10)
        assert len(trace) == 10
        assert trace.mean_power == pytest.approx(1e-3)

    def test_square_trace_pattern(self):
        trace = square_trace(1.0, on_ms=2, off_ms=3, periods=2)
        assert trace.samples == [1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0]

    def test_concat(self):
        trace = concat([constant_trace(1.0, 2), constant_trace(2.0, 1)])
        assert trace.samples == [1.0, 1.0, 2.0]


class TestWifiSynthesis:
    def test_deterministic_for_seed(self):
        a = wifi_trace(duration_ms=500, seed=7)
        b = wifi_trace(duration_ms=500, seed=7)
        assert a.samples == b.samples

    def test_different_seeds_differ(self):
        a = wifi_trace(duration_ms=500, seed=1)
        b = wifi_trace(duration_ms=500, seed=2)
        assert a.samples != b.samples

    def test_mean_power_normalized(self):
        trace = wifi_trace(duration_ms=2000, seed=3, mean_power_w=300e-6)
        assert trace.mean_power == pytest.approx(300e-6, rel=1e-6)

    def test_bursty_structure(self):
        """Peak power should be well above the mean (bursty, not flat)."""
        trace = wifi_trace(duration_ms=2000, seed=11)
        assert trace.peak_power > 2.0 * trace.mean_power

    def test_all_samples_nonnegative(self):
        trace = wifi_trace(duration_ms=1000, seed=5)
        assert all(s >= 0 for s in trace.samples)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            wifi_trace(duration_ms=0)

    def test_paper_traces_count_and_spread(self):
        traces = paper_traces(count=9, duration_ms=500)
        assert len(traces) == 9
        means = [t.mean_power for t in traces]
        assert max(means) > 2.0 * min(means)  # weak to strong conditions
        assert len({t.name for t in traces}) == 9


class TestBundledTraces:
    def test_three_traces_ship_with_the_library(self):
        from repro.power import bundled_traces

        traces = bundled_traces()
        assert len(traces) == 3
        means = [t.mean_power for t in traces]
        assert means == sorted(means)  # weak / medium / strong
        assert all(len(t) == 2000 for t in traces)

    def test_bundled_traces_drive_a_run(self):
        from repro.core import AnytimeKernel
        from repro.power import Capacitor, bundled_traces
        from repro.workloads import make_workload

        workload = make_workload("NetMotion", "tiny")
        kernel = AnytimeKernel(workload.kernel)
        run = kernel.run_intermittent(
            workload.inputs,
            bundled_traces()[1],
            capacitor=Capacitor(capacitance_f=0.05e-6, v_initial=3.0, v_max=3.3),
            watchdog_cycles=400,
        )
        assert run.result.completed
        assert workload.decode(run.outputs) == workload.decoded_reference()
