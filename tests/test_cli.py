"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out and "ablation-memo" in out

    def test_run_areapower(self, capsys):
        assert main(["run", "areapower"]) == 0
        out = capsys.readouterr().out
        assert "Fmax" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_tiny_table1(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Conv2d" in out

    def test_bench_tiny(self, capsys):
        assert main(["bench", "MatAdd", "--scale", "tiny", "--traces", "2"]) == 0
        out = capsys.readouterr().out
        assert "8-bit" in out and "speedup" in out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "Quux"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
