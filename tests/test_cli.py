"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out and "ablation-memo" in out

    def test_run_areapower(self, capsys):
        assert main(["run", "areapower"]) == 0
        out = capsys.readouterr().out
        assert "Fmax" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_tiny_table1(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Conv2d" in out

    def test_bench_tiny(self, capsys):
        assert main(["bench", "MatAdd", "--scale", "tiny", "--traces", "2"]) == 0
        out = capsys.readouterr().out
        assert "8-bit" in out and "speedup" in out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "Quux"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestProfileCli:
    def test_profile_table_and_folded_output(self, capsys, tmp_path):
        out_path = tmp_path / "mm.folded"
        assert main(["profile", "MatMul", "--scale", "tiny",
                     "--top", "3", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Hot regions" in out
        assert "region" in out and "share" in out
        lines = out_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0 and ";" in stack

    def test_profile_unknown_benchmark(self, capsys):
        assert main(["profile", "Quux"]) == 2


class TestReportCli:
    def test_trace_summarize_json(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps({"t": "sample_start", "pid": 1, "workload": "W",
                        "mode": "swp", "bits": 8, "runtime": "clank",
                        "trace": 0, "invocation": 0}) + "\n"
            + json.dumps({"t": "sample_end", "pid": 1, "engine": "interp",
                          "completed": True, "skim_taken": False,
                          "wall_ms": 1}) + "\n"
        )
        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["samples"]["total"] == 1

    def test_report_text_and_html(self, capsys, tmp_path):
        import json

        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "schema": 1, "command": "run x", "git_sha": "f" * 40,
            "python": "3", "platform": "p",
            "results": [{"workload": "W", "mode": "precise", "bits": None,
                         "runtime": "clank", "engine": "interp",
                         "samples": 1,
                         "metrics": {"counters": {},
                                     "histograms": {"wall_ms": {
                                         "count": 1, "sum": 5,
                                         "min": 5, "max": 5}}}}],
        }))
        assert main(["report", "--manifest", str(manifest)]) == 0
        assert "Configurations" in capsys.readouterr().out

        html_path = tmp_path / "dash.html"
        assert main(["report", "--manifest", str(manifest), "--html",
                     "--output", str(html_path)]) == 0
        page = html_path.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page.lower()

    def test_report_unreadable_input(self, capsys, tmp_path):
        assert main(["report", "--manifest", str(tmp_path / "no.json")]) == 2
