"""Tests for the C-like kernel front end (paper Listings 1 and 3)."""

import pytest

from repro.compiler import apply_swp, apply_swv, compile_kernel, evaluate
from repro.compiler.frontend import FrontendError, parse_kernel

LISTING1 = """
#pragma asp input(A, 8);
#pragma asp output(X);

kernel listing1 {
    input  u16 A[8];
    input  u16 F[8];
    output u32 X[8];

    for (i = 0; i < 8; i++) {
        X[i] += A[i] * F[i];
    }
}
"""

LISTING3 = """
#pragma asv input(A, 8);
#pragma asv input(B, 8);
#pragma asv output(X, 8);

kernel listing3 {
    input  u16 A[16];
    input  u16 B[16];
    output u16 X[16];

    for (i = 0; i < 16; i++) {
        X[i] = A[i] + B[i];
    }
}
"""


class TestParsing:
    def test_listing1_shape(self):
        kernel = parse_kernel(LISTING1)
        assert kernel.name == "listing1"
        assert kernel.arrays["A"].pragma.kind == "asp"
        assert kernel.arrays["A"].pragma.bits == 8
        assert kernel.arrays["F"].pragma is None
        assert kernel.arrays["X"].element_bits == 32
        (loop,) = kernel.body
        assert loop.var == "i" and loop.start == 0 and loop.end == 8
        store = loop.body[0]
        assert store.accumulate is True

    def test_listing3_shape(self):
        kernel = parse_kernel(LISTING3)
        assert kernel.arrays["B"].pragma.kind == "asv"
        store = kernel.body[0].body[0]
        assert store.accumulate is False

    def test_provisioned_pragma(self):
        kernel = parse_kernel(LISTING3.replace(
            "#pragma asv input(A, 8);", "#pragma asv input(A, 8, provisioned);"
        ))
        assert kernel.arrays["A"].pragma.provisioned is True

    def test_scalars_and_nested_loops(self):
        source = """
        kernel nest {
            input  u16 A[4];
            output u32 S[1];
            scalar acc;

            acc = 0;
            for (i = 0; i < 4; i++) {
                acc += A[i] * A[i];
            }
            S[0] = acc >> 2;
        }
        """
        kernel = parse_kernel(source)
        assert kernel.scalars == ("acc",)
        out = evaluate(kernel, {"A": [1, 2, 3, 4]})
        assert out["S"][0] == (1 + 4 + 9 + 16) >> 2

    def test_expression_precedence(self):
        source = """
        kernel prec {
            output u32 X[1];
            X[0] = 1 + 2 * 3 << 1 | 128;
        }
        """
        kernel = parse_kernel(source)
        # C precedence: ((1 + (2*3)) << 1) | 128
        assert evaluate(kernel, {})["X"][0] == ((1 + 6) << 1) | 128

    def test_hex_literals_and_comments(self):
        source = """
        // a comment
        kernel h {
            output u32 X[1];
            X[0] = 0xFF & 0x0F;  // masks
        }
        """
        assert evaluate(parse_kernel(source), {})["X"][0] == 0x0F


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(FrontendError):
            parse_kernel("kernel k { input f32 A[4]; }")

    def test_undeclared_array_store(self):
        with pytest.raises((FrontendError, ValueError)):
            parse_kernel("kernel k { output u32 X[1]; Y[0] = 1; }")

    def test_malformed_for(self):
        with pytest.raises(FrontendError):
            parse_kernel("kernel k { output u32 X[1]; for (i = 0; j < 4; i++) { X[0] = 1; } }")

    def test_bad_pragma_kind(self):
        with pytest.raises(FrontendError):
            parse_kernel("#pragma fast input(A, 8);\nkernel k { output u32 X[1]; }")

    def test_trailing_tokens(self):
        with pytest.raises(FrontendError):
            parse_kernel("kernel k { output u32 X[1]; } extra")

    def test_unexpected_character(self):
        with pytest.raises(FrontendError):
            parse_kernel("kernel k { output u32 X[1]; X[0] = 1 $ 2; }")


class TestEndToEnd:
    def test_listing1_through_swp_and_hardware(self):
        """Source text -> pragmas -> SWP pass -> machine code -> exact result."""
        kernel = parse_kernel(LISTING1)
        inputs = {"A": [0x1234, 255, 65535, 0, 7, 4096, 9, 31337],
                  "F": [3, 1, 2, 9, 65535, 5, 0, 7]}
        reference = evaluate(kernel, inputs)["X"]
        transformed = apply_swp(kernel)
        compiled = compile_kernel(transformed)
        cpu = compiled.make_cpu(inputs)
        cpu.run()
        assert compiled.read_array(cpu.memory, "X") == reference

    def test_listing3_through_swv_and_hardware(self):
        kernel = parse_kernel(LISTING3.replace("(A, 8)", "(A, 8, provisioned)")
                              .replace("(B, 8)", "(B, 8, provisioned)")
                              .replace("(X, 8)", "(X, 8, provisioned)"))
        inputs = {"A": list(range(100, 1700, 100)), "B": [0x00FF] * 16}
        reference = evaluate(kernel, inputs)["X"]
        transformed = apply_swv(kernel)
        compiled = compile_kernel(transformed)
        cpu = compiled.make_cpu(inputs)
        cpu.run()
        assert compiled.read_array(cpu.memory, "X") == reference
