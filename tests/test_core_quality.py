"""Unit and property tests for quality metrics and fixed point."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    FixedPointFormat,
    Q16,
    Q32,
    QualityCurve,
    mean_relative_error,
    nrmse,
    psnr,
)

floats = st.floats(-1e6, 1e6, allow_nan=False)


class TestNrmse:
    def test_identical_is_zero(self):
        assert nrmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        # RMSE = 1, range = 2 -> 50%
        assert nrmse([0, 2], [1, 1]) == pytest.approx(50.0)

    def test_constant_reference_normalized_by_magnitude(self):
        # rmse = sqrt(2), range = 0 -> normalize by max |ref| = 10.
        assert nrmse([10, 10], [10, 12]) == pytest.approx(100.0 * np.sqrt(2.0) / 10.0)

    def test_zero_reference(self):
        assert nrmse([0, 0], [1, 1]) == pytest.approx(100.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nrmse([1, 2], [1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nrmse([], [])

    @given(st.lists(floats, min_size=2, max_size=30))
    def test_nonnegative_property(self, values):
        approx = [v + 1 for v in values]
        assert nrmse(values, approx) >= 0

    @given(st.lists(floats, min_size=2, max_size=30))
    def test_self_comparison_zero_property(self, values):
        assert nrmse(values, values) == 0.0


class TestPsnrAndMre:
    def test_psnr_identical_infinite(self):
        assert psnr([1, 2], [1, 2]) == float("inf")

    def test_psnr_known(self):
        # MSE = 1, peak 255 -> 10*log10(255^2) ~ 48.13 dB
        assert psnr([0, 0], [1, -1]) == pytest.approx(48.13, abs=0.01)

    def test_mre(self):
        assert mean_relative_error([100, 200], [110, 220]) == pytest.approx(10.0)

    def test_mre_ignores_zero_refs(self):
        assert mean_relative_error([0, 100], [5, 110]) == pytest.approx(10.0)

    def test_mre_all_zero_ref(self):
        assert mean_relative_error([0, 0], [0, 0]) == 0.0
        assert mean_relative_error([0, 0], [1, 0]) == float("inf")


class TestQualityCurve:
    def make_curve(self):
        return QualityCurve([(0.5, 10.0), (1.0, 2.0), (1.5, 0.0)], label="test")

    def test_points_sorted(self):
        curve = QualityCurve([(1.0, 2.0), (0.5, 10.0)])
        assert curve.runtimes == [0.5, 1.0]

    def test_error_at_step_interpolation(self):
        curve = self.make_curve()
        assert curve.error_at(0.5) == 10.0
        assert curve.error_at(0.9) == 10.0
        assert curve.error_at(1.2) == 2.0
        assert curve.error_at(99.0) == 0.0

    def test_error_before_first_point(self):
        assert self.make_curve().error_at(0.1) == 10.0

    def test_runtime_to_reach(self):
        curve = self.make_curve()
        assert curve.runtime_to_reach(5.0) == 1.0
        assert curve.runtime_to_reach(0.0) == 1.5
        assert curve.runtime_to_reach(-1.0) == float("inf")

    def test_final_error_and_first_runtime(self):
        curve = self.make_curve()
        assert curve.final_error == 0.0
        assert curve.first_output_runtime == 0.5

    def test_monotonic_check(self):
        assert self.make_curve().is_monotonically_improving()
        bad = QualityCurve([(0.5, 1.0), (1.0, 5.0)])
        assert not bad.is_monotonically_improving()

    def test_add_keeps_sorted(self):
        curve = self.make_curve()
        curve.add(0.1, 50.0)
        assert curve.runtimes[0] == 0.1

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            QualityCurve().error_at(1.0)
        with pytest.raises(ValueError):
            _ = QualityCurve().final_error

    def test_len_and_iter(self):
        curve = self.make_curve()
        assert len(curve) == 3
        assert [p.error for p in curve] == [10.0, 2.0, 0.0]


class TestFixedPoint:
    def test_roundtrip_exact_for_representable(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.from_raw(fmt.to_raw(1.5)) == 1.5

    def test_rounding(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.to_raw(0.004) == 1  # 0.004 * 256 = 1.024 -> 1
        assert fmt.to_raw(0.0019) == 0  # 0.49 ulp rounds down

    def test_saturation(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.to_raw(300) == 255
        assert fmt.to_raw(-5) == 0

    def test_encode_decode_lists(self):
        fmt = FixedPointFormat(16, 8)
        values = [0.0, 1.25, 100.5]
        assert fmt.decode(fmt.encode(values)) == values

    def test_quantization_error_under_paper_bound(self):
        """The paper keeps fixed-point conversion error under 1%."""
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 200, size=200)
        assert Q16.quantization_error(values) < 0.01

    def test_quantization_error_zero_input(self):
        assert Q16.quantization_error([0.0, 0.0]) == 0.0

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(16, 17)

    def test_q32(self):
        assert Q32.to_raw(1.0) == 1 << 16

    @given(st.floats(0, 250, allow_nan=False))
    def test_roundtrip_error_bounded_property(self, value):
        fmt = FixedPointFormat(16, 8)
        decoded = fmt.from_raw(fmt.to_raw(value))
        assert abs(decoded - value) <= 1.0 / 512 + 1e-12
