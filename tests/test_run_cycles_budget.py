"""Budget-boundary semantics of ``CPU.run_cycles`` and ``peek_cost``.

The intermittent executor models a dying supply as a cycle budget: an
instruction commits only if its *worst-case* cost fits in what's left.
These tests pin the boundary behavior — an exact-fit budget commits,
one cycle less does not — and the contract between ``peek_cost`` and
the cycles ``step`` actually charges.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.isa.instructions import BRANCH_CONDS
from repro.sim import CPU, MemoTable, Multiplier, ReferenceCPU, default_memory
from repro.sim.cpu import CpuFault

from tests.test_fast_interpreter import (
    SCRATCH_WORDS,
    _fresh_pair,
    _materialize,
    _random_body,
)


def _cpu(source, **kwargs):
    return CPU(assemble(source), default_memory(), **kwargs)


THREE_ADDS = """
    ADD R0, R0, #1
    ADD R0, R0, #1
    ADD R0, R0, #1
    HALT
"""


class TestExactFit:
    def test_exact_budget_commits_all(self):
        cpu = _cpu(THREE_ADDS)
        # 3 single-cycle adds + 1-cycle HALT fit exactly in 4 cycles.
        assert cpu.run_cycles(4) == 4
        assert cpu.halted
        assert cpu.regs[0] == 3

    def test_one_less_stops_short(self):
        cpu = _cpu(THREE_ADDS)
        assert cpu.run_cycles(3) == 3
        assert not cpu.halted
        assert cpu.pc == 3  # all adds retired, HALT did not
        assert cpu.regs[0] == 3

    def test_zero_budget_runs_nothing(self):
        cpu = _cpu(THREE_ADDS)
        assert cpu.run_cycles(0) == 0
        assert cpu.pc == 0
        assert not cpu.halted

    def test_multi_cycle_instruction_boundary(self):
        # A full MUL peeks at 16 cycles: a 15-cycle budget must not
        # start it, 16 exactly commits it.
        source = """
            MOV R0, #7
            MOV R1, #9
            MUL R0, R1
            HALT
        """
        cpu = _cpu(source)
        assert cpu.run_cycles(2) == 2  # the two MOVs
        assert cpu.peek_cost() == 16
        assert cpu.run_cycles(15) == 0
        assert cpu.pc == 2
        assert cpu.run_cycles(16) == 16
        assert cpu.pc == 3
        assert cpu.regs[0] == 63

    def test_budget_resumes_where_it_stopped(self):
        cpu = _cpu(THREE_ADDS)
        consumed = 0
        while not cpu.halted:
            consumed += cpu.run_cycles(1)
        assert consumed == 4
        assert cpu.regs[0] == 3


class TestPeekCostContract:
    def test_peek_is_upper_bound_with_shortcuts(self):
        # With memoization + zero skipping the actual multiply can take
        # 1 cycle; peek_cost must still report the worst case (16).
        source = """
            MOV R0, #0
            MOV R1, #9
            MUL R0, R1
            HALT
        """
        multiplier = Multiplier(memo_table=MemoTable(), zero_skipping=True)
        cpu = _cpu(source, multiplier=multiplier)
        cpu.run_cycles(2)
        assert cpu.peek_cost() == 16
        assert cpu.step() == 1  # zero-skipped
        assert cpu.peek_cost() == 1  # HALT

    def test_halted_cpu_peeks_zero(self):
        cpu = _cpu("HALT")
        cpu.run()
        assert cpu.peek_cost() == 0
        try:
            cpu.step()
        except CpuFault:
            pass
        else:
            raise AssertionError("step on a halted CPU must fault")

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 10**9), st.integers(5, 50))
    def test_peek_bounds_step_on_random_programs(self, seed, size):
        """peek_cost() >= step()'s charge; equality except for untaken
        conditional branches (peek reports the taken worst case)."""
        rng = random.Random(seed)
        program = _materialize(_random_body(rng, size), rng)
        data = [rng.randrange(0, 2**32) for _ in range(SCRATCH_WORDS)]
        fast, ref = _fresh_pair(program, data)
        for cpu in (fast, ref):
            for _ in range(len(program) + 5):
                if cpu.halted:
                    break
                op = program.instructions[cpu.pc].op
                peek = cpu.peek_cost()
                charged = cpu.step()
                assert charged <= peek
                if op not in BRANCH_CONDS:
                    # Plain multiplier, no hooks: worst case is exact.
                    assert charged == peek
        assert fast.stats.as_dict() == ref.stats.as_dict()

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10**9), st.integers(5, 50), st.integers(1, 25))
    def test_budget_never_overdrawn(self, seed, size, budget):
        """Without hook overhead, run_cycles never consumes more than
        the budget, and stops only when the next peek would overdraw."""
        rng = random.Random(seed)
        program = _materialize(_random_body(rng, size), rng)
        data = [rng.randrange(0, 2**32) for _ in range(SCRATCH_WORDS)]
        fast, _ = _fresh_pair(program, data)
        consumed = fast.run_cycles(budget)
        assert consumed <= budget
        if not fast.halted:
            assert consumed + fast.peek_cost() > budget
