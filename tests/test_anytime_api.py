"""Tests for the high-level AnytimeKernel API and the stream scheduler."""

import pytest

from repro.core import AnytimeConfig, AnytimeKernel, nrmse
from repro.compiler import Array, BinOp, Kernel, Load, Loop, Pragma, Store, Var
from repro.power import Capacitor, EnergyModel, PowerSupply, constant_trace, wifi_trace
from repro.runtime import NVPRuntime, process_stream
from repro.workloads import make_workload


def listing1(n=16):
    return Kernel(
        "l1",
        {
            "A": Array("A", n, 16, "input", pragma=Pragma("asp", 8)),
            "F": Array("F", n, 16, "input"),
            "X": Array("X", n, 32, "output"),
        },
        [Loop("i", 0, n, [
            Store("X", Var("i"), BinOp("*", Load("F", Var("i")), Load("A", Var("i"))), accumulate=True)
        ])],
    )


INPUTS = {"A": [i * 4099 % 65536 for i in range(16)], "F": [7] * 16}


class TestConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            AnytimeConfig(mode="turbo")

    def test_bad_runtime_rejected(self):
        kernel = AnytimeKernel(listing1())
        with pytest.raises(ValueError):
            kernel.run_intermittent(INPUTS, constant_trace(1e-3, 100), runtime="fpga")

    def test_precise_mode_unchanged(self):
        kernel = AnytimeKernel(listing1())
        assert kernel.kernel is kernel.base_kernel


class TestRun:
    def test_run_matches_reference(self):
        kernel = AnytimeKernel(listing1(), AnytimeConfig(mode="swp", bits=8))
        run = kernel.run(INPUTS)
        assert run.outputs == kernel.reference_outputs(INPUTS)
        assert run.cycles > 0
        assert 0 < run.wn_fraction < 1

    def test_memoization_config(self):
        plain = AnytimeKernel(listing1(), AnytimeConfig(mode="swp", bits=8))
        memo = AnytimeKernel(
            listing1(), AnytimeConfig(mode="swp", bits=8, memoization=True, zero_skipping=True)
        )
        # Constant F=7 multiplies hit the memo table heavily.
        assert memo.run(INPUTS).cycles < plain.run(INPUTS).cycles
        assert memo.run(INPUTS).outputs == plain.run(INPUTS).outputs


class TestQualityCurve:
    def test_curve_properties(self):
        kernel = AnytimeKernel(listing1(), AnytimeConfig(mode="swp", bits=8))
        curve = kernel.quality_curve(INPUTS, samples=12)
        assert len(curve) >= 2
        assert curve.final_error == 0.0
        assert curve.is_monotonically_improving(tolerance=1.0)
        assert curve.first_output_runtime < 1.0

    def test_custom_decode(self):
        kernel = AnytimeKernel(listing1(), AnytimeConfig(mode="swp", bits=8))
        curve = kernel.quality_curve(
            INPUTS, samples=6, decode=lambda outputs: [v / 7 for v in outputs["X"]]
        )
        assert curve.final_error == 0.0


class TestIntermittentApi:
    def test_completes_on_generous_supply(self):
        kernel = AnytimeKernel(listing1(), AnytimeConfig(mode="swp", bits=8))
        run = kernel.run_intermittent(INPUTS, constant_trace(20e-3, 10_000))
        assert run.result.completed
        assert run.outputs == kernel.reference_outputs(INPUTS)

    def test_skim_on_starved_supply(self):
        kernel = AnytimeKernel(listing1(256), AnytimeConfig(mode="swp", bits=8))
        inputs = {"A": [i * 251 % 65536 for i in range(256)], "F": [9] * 256}
        run = kernel.run_intermittent(
            inputs,
            wifi_trace(duration_ms=3000, seed=2),
            runtime="clank",
            capacitor=Capacitor(capacitance_f=0.03e-6, v_initial=3.0, v_max=3.3),
            watchdog_cycles=300,
        )
        assert run.result.completed
        assert run.result.skim_taken
        # The MSb contribution alone: low NRMSE, not exact.
        reference = [v * 9 for v in inputs["A"]]
        error = nrmse(reference, run.outputs["X"])
        assert 0 < error < 5.0


class TestStreamScheduler:
    def test_freshest_sample_policy(self):
        """When processing takes ~2 periods, every other sample drops."""
        kernel = AnytimeKernel(listing1())
        energy = EnergyModel()
        probe = kernel.run(INPUTS).cycles
        period = 40
        # Harvest ~55% of a run's energy per period.
        power = 0.55 * energy.energy_for_cycles(probe) / (period / 1000.0)
        supply = PowerSupply(
            constant_trace(power, 100_000),
            Capacitor(capacitance_f=0.02e-6, v_initial=3.0, v_max=3.3),
            energy,
        )
        arrivals = [i * period for i in range(12)]
        result = process_stream(
            arrivals,
            supply,
            make_cpu=lambda i: kernel.make_cpu(INPUTS),
            make_runtime=NVPRuntime,
            extract=lambda cpu: kernel.read_outputs(cpu)["X"][0],
        )
        assert 0.3 < result.coverage < 0.9
        assert result.missed_indices
        assert all(p.output == INPUTS["A"][0] * 7 for p in result.processed)

    def test_ample_energy_processes_all(self):
        kernel = AnytimeKernel(listing1())
        supply = PowerSupply(constant_trace(20e-3, 100_000), Capacitor(), EnergyModel())
        arrivals = [i * 50 for i in range(6)]
        result = process_stream(
            arrivals,
            supply,
            make_cpu=lambda i: kernel.make_cpu(INPUTS),
            make_runtime=NVPRuntime,
            extract=lambda cpu: 0,
        )
        assert result.coverage == 1.0
        assert [p.index for p in result.processed] == list(range(6))

    def test_unsorted_arrivals_rejected(self):
        kernel = AnytimeKernel(listing1())
        supply = PowerSupply(constant_trace(20e-3, 100), Capacitor(), EnergyModel())
        with pytest.raises(ValueError):
            process_stream([10, 5], supply, lambda i: None, NVPRuntime, lambda c: 0)
