"""The record-once/replay-per-trace engine must be bit-exact.

Every test here compares the replay engine (``REPRO_REPLAY=1``) against
the interpreter on the same grid and asserts that every ``SampleRun``
field — wall_ms, on_ms, active_cycles, outages, skim_taken, error — is
identical. The replay engine is a performance path only; any observable
divergence is a bug.
"""

import pytest

from repro.experiments.common import (
    ExperimentSetup,
    _worker_records,
    build_anytime,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
    run_benchmark_suite,
)
from repro.sim.replay import record_run
from repro.workloads import make_workload


def _setup():
    return ExperimentSetup(scale="tiny")


def _environment(workload, setup):
    return calibrate_environment(measure_precise_cycles(workload), setup)


def _serial_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_REPLAY", raising=False)


def _grid_runs(workload, configs, runtime, setup, environment, reference):
    results = run_benchmark_suite(
        workload, configs, runtime, setup, environment, reference
    )
    return [run for result in results for run in result.runs]


def test_fig10_grid_replay_identical(monkeypatch):
    """The full Figure-10 MatMul grid: 3 configs x 9 traces x 3 invocations."""
    _serial_env(monkeypatch)
    setup = _setup()
    workload = make_workload("MatMul", setup.scale)
    environment = _environment(workload, setup)
    reference = workload.decoded_reference()
    configs = [("precise", None), (workload.technique, 8), (workload.technique, 4)]

    interp = _grid_runs(workload, configs, "clank", setup, environment, reference)
    monkeypatch.setenv("REPRO_REPLAY", "1")
    _worker_records.clear()
    replay = _grid_runs(workload, configs, "clank", setup, environment, reference)

    assert len(interp) == 3 * setup.trace_count * setup.invocations
    assert replay == interp  # SampleRun dataclass: field-by-field equality


@pytest.mark.parametrize("workload_name", ["MatMul", "Var"])
@pytest.mark.parametrize("runtime", ["clank", "nvp", "hibernus"])
def test_runtime_grid_replay_identical(monkeypatch, workload_name, runtime):
    """Every runtime policy replays exactly, on two different workloads."""
    _serial_env(monkeypatch)
    setup = _setup()
    workload = make_workload(workload_name, setup.scale)
    environment = _environment(workload, setup)
    reference = workload.decoded_reference()

    interp = run_benchmark(
        workload, workload.technique, 8, runtime, setup, environment, reference
    )
    monkeypatch.setenv("REPRO_REPLAY", "1")
    _worker_records.clear()
    replay = run_benchmark(
        workload, workload.technique, 8, runtime, setup, environment, reference
    )

    assert replay.runs == interp.runs


def test_hibernus_grid_end_to_end(monkeypatch):
    """Grid-level hibernus check including the precise (no-skim) build."""
    _serial_env(monkeypatch)
    setup = _setup()
    workload = make_workload("Home", setup.scale)
    environment = _environment(workload, setup)
    reference = workload.decoded_reference()
    configs = [("precise", None), (workload.technique, 8)]

    interp = _grid_runs(workload, configs, "hibernus", setup, environment, reference)
    monkeypatch.setenv("REPRO_REPLAY", "1")
    _worker_records.clear()
    replay = _grid_runs(workload, configs, "hibernus", setup, environment, reference)

    assert replay == interp
    assert any(run.outages > 0 for run in interp), "grid exercised no outages"


def test_replay_gate_off_records_nothing(monkeypatch):
    """Without REPRO_REPLAY=1 the harness never builds a commit log."""
    _serial_env(monkeypatch)
    setup = _setup()
    workload = make_workload("Var", setup.scale)
    environment = _environment(workload, setup)
    _worker_records.clear()
    run_benchmark(
        workload, "precise", None, "clank", setup, environment,
        workload.decoded_reference(),
    )
    assert not _worker_records


def test_memoized_kernel_not_replayable():
    """Memoization makes cycle costs input-history-dependent; the
    recorder must refuse to mark such a run replayable."""
    workload = make_workload("MatMul", "tiny")
    kernel = build_anytime(workload, "swp", 8, memoization=True)
    record = record_run(kernel, workload.inputs)
    assert not record.replayable
    assert record.reason


def test_record_marks_completed_run_replayable():
    workload = make_workload("MatMul", "tiny")
    kernel = build_anytime(workload, "swp", 8)
    record = record_run(kernel, workload.inputs)
    assert record.replayable
    assert record.final_outputs  # run ran to completion under recording
    assert record.length > 0
    assert len(record.cum_cost) == record.length + 1
