"""Tests for the observability layer: tracer, metrics, manifests, CLI.

Covers the tentpole acceptance criteria: the disabled path emits zero
events, an enabled run round-trips through the summarizer with every
replay fallback and skim arm accounted for, metrics merge identically
serial vs parallel, and the manifest stamps provenance.
"""

import json
import os

import pytest

from repro.experiments import (
    ExperimentSetup,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
)
from repro.experiments import common
from repro.observability import (
    Histogram,
    Metrics,
    TRACER,
    TraceSummary,
    active_manifest,
    begin_manifest,
    finish_manifest,
    format_summary,
    record_result,
    summarize_trace,
)
from repro.sim.replay import ReplayRecord
from repro.workloads import make_workload

TINY = ExperimentSetup(scale="tiny", trace_count=2, invocations=1)


@pytest.fixture(autouse=True)
def _quiet_tracer(monkeypatch):
    """Every test starts with tracing off and no REPRO_* knobs set."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_REPLAY", raising=False)
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_MANIFEST", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    TRACER.disable()
    yield
    TRACER.disable()


def _matmul_env():
    workload = make_workload("MatMul", "tiny")
    env = calibrate_environment(measure_precise_cycles(workload), TINY)
    return workload, env


class TestTracer:
    def test_disabled_emit_is_noop(self, tmp_path):
        assert not TRACER.enabled
        before = TRACER.emitted
        TRACER.emit("outage", tick=1)
        assert TRACER.emitted == before
        assert TRACER.path is None

    def test_enabled_writes_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.enable(str(path))
        TRACER.emit("outage", tick=7, runtime="clank")
        TRACER.emit("restore", tick=9, cost=60)
        TRACER.disable()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["t"] for e in lines] == ["outage", "restore"]
        assert lines[0]["tick"] == 7
        assert all(e["pid"] == os.getpid() for e in lines)

    def test_disabled_run_emits_zero_events(self):
        """A full benchmark with tracing off must not emit anything."""
        workload, env = _matmul_env()
        before = TRACER.emitted
        run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        assert TRACER.emitted == before


class TestMetrics:
    def test_histogram_merge_matches_combined_observation(self):
        a, b, combined = Histogram(), Histogram(), Histogram()
        for value in (1, 5, 2):
            a.observe(value)
            combined.observe(value)
        for value in (9, 3):
            b.observe(value)
            combined.observe(value)
        a.merge(b)
        assert a == combined
        assert a.mean == pytest.approx(4.0)

    def test_dict_round_trip(self):
        metrics = Metrics()
        metrics.count("outages", 3)
        metrics.observe("wall_ms", 10)
        metrics.observe("wall_ms", 30)
        restored = Metrics.from_dict(metrics.to_dict())
        assert restored == metrics
        assert restored.histograms["wall_ms"].mean == pytest.approx(20.0)

    def test_merge_is_order_independent(self):
        parts = []
        for chunk in ((1, 2), (3,), (4, 5, 6)):
            m = Metrics()
            for v in chunk:
                m.count("samples")
                m.observe("wall_ms", v)
            parts.append(m)
        forward = Metrics()
        for part in parts:
            forward.merge(part)
        backward = Metrics()
        for part in reversed(parts):
            backward.merge(part)
        assert forward == backward
        assert forward.counters["samples"] == 6

    def test_serial_and_parallel_rollups_identical(self):
        """The REPRO_JOBS pool must not change the merged metrics."""
        workload, env = _matmul_env()
        serial = run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        parallel = run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=2)
        assert serial.runs == parallel.runs
        assert serial.merged_metrics() == parallel.merged_metrics()
        counters = serial.merged_metrics().counters
        assert counters["samples"] == len(serial.runs) == 2
        assert counters["outages"] > 0


class TestTraceRoundTrip:
    def _run_grid(self, tmp_path, monkeypatch, replay=True):
        """A fig10-style MatMul grid with tracing (and replay) enabled."""
        if replay:
            monkeypatch.setenv("REPRO_REPLAY", "1")
        common._worker_records.clear()
        path = tmp_path / "grid.jsonl"
        TRACER.enable(str(path))
        workload, env = _matmul_env()
        results = [
            run_benchmark(workload, mode, bits, "clank", TINY, env, jobs=1)
            for mode, bits in (("precise", None), ("swp", 8), ("swp", 4))
        ]
        TRACER.disable()
        return path, results

    def test_summarizer_accounts_every_sample_and_skim(
        self, tmp_path, monkeypatch
    ):
        path, results = self._run_grid(tmp_path, monkeypatch)
        summary = summarize_trace(str(path))
        grid_samples = sum(len(r.runs) for r in results)
        assert len(summary.samples) == grid_samples
        assert summary.parse_errors == 0
        assert not summary.orphan_events
        # Every skim arm event is attributed to a sample, and the takes
        # agree with the harness's own skim accounting.
        assert summary.skim_arms == sum(
            s.skim_arms for s in summary.samples
        )
        harness_takes = sum(
            run.skim_taken for r in results for run in r.runs
        )
        # A skim handoff resumes on a live executor which may arm (and
        # take) further skims; the trace can only show more, never fewer.
        assert summary.skim_takes >= harness_takes
        assert summary.outages == sum(s.outages for s in summary.samples)
        # All samples replayed (MatMul is exactly replayable): no fallbacks.
        assert not summary.fallback_reasons
        assert set(summary.engines) == {"replay"}

    def test_fallback_reason_accounted(self, tmp_path, monkeypatch):
        """A non-replayable record must show up as a counted fallback."""
        monkeypatch.setenv("REPRO_REPLAY", "1")
        workload, env = _matmul_env()
        # Poison the record cache: the harness must fall back to the
        # interpreter and say why.
        stub = ReplayRecord(64)
        stub.replayable = False
        stub.reason = "synthetic test poison"
        for mode, bits in (("precise", None), ("swp", 8)):
            common._worker_records[("MatMul", "tiny", mode, bits)] = stub
        try:
            path = tmp_path / "fallback.jsonl"
            TRACER.enable(str(path))
            result = run_benchmark(
                workload, "swp", 8, "clank", TINY, env, jobs=1
            )
            TRACER.disable()
        finally:
            common._worker_records.clear()
        summary = summarize_trace(str(path))
        assert summary.fallback_reasons == {
            "not-replayable: synthetic test poison": len(result.runs)
        }
        assert set(summary.engines) == {"interp"}
        for sample in summary.samples:
            assert sample.fallback_reason == (
                "not-replayable: synthetic test poison"
            )
        counters = result.merged_metrics().counters
        assert counters["replay_fallbacks"] == len(result.runs)
        assert counters["engine.interp"] == len(result.runs)

    def test_format_summary_renders(self, tmp_path, monkeypatch):
        path, _ = self._run_grid(tmp_path, monkeypatch)
        text = format_summary(summarize_trace(str(path)))
        assert "event counts:" in text
        assert "sample_start" in text
        assert "replay fallbacks: none" in text
        assert "MatMul/swp8/clank" in text

    def test_summarizer_tolerates_garbage_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"no_type": 1}\n{"t": "outage"}\n')
        summary = summarize_trace(str(path))
        assert summary.parse_errors == 2
        assert summary.total_events == 1
        assert isinstance(summary, TraceSummary)


class TestManifest:
    def test_record_result_is_noop_when_idle(self):
        assert active_manifest() is None
        record_result("MatMul", "swp", 8, "clank", "interp")  # must not raise

    def test_manifest_collects_and_writes(self, tmp_path):
        begin_manifest(command="test run")
        try:
            workload, env = _matmul_env()
            run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
            manifest = active_manifest()
            assert manifest is not None
            assert len(manifest.results) == 1
            entry = manifest.results[0]
            assert entry["workload"] == "MatMul"
            assert entry["engine"] == "interp"
            assert entry["samples"] == 2
            assert entry["metrics"]["counters"]["samples"] == 2
        finally:
            out = tmp_path / "manifest.json"
            finish_manifest(str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["command"] == "test run"
        assert data["python"]
        assert len(data["results"]) == 1
        assert active_manifest() is None

    def test_metrics_env_writes_rollup_lines(self, tmp_path, monkeypatch):
        rollup = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS", str(rollup))
        workload, env = _matmul_env()
        run_benchmark(workload, "precise", None, "clank", TINY, env, jobs=1)
        run_benchmark(workload, "swp", 8, "clank", TINY, env, jobs=1)
        lines = [json.loads(l) for l in rollup.read_text().splitlines()]
        assert [l["mode"] for l in lines] == ["precise", "swp"]
        assert all(l["metrics"]["counters"]["samples"] == 2 for l in lines)


class TestTraceCLI:
    def test_trace_summarize_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "cli.jsonl"
        TRACER.enable(str(path))
        TRACER.emit(
            "sample_start", workload="MatMul", scale="tiny", mode="swp",
            bits=8, runtime="clank", trace=0, invocation=0,
        )
        TRACER.emit("outage", tick=3, runtime="clank", engine="interp")
        TRACER.emit(
            "sample_end", engine="interp", completed=True,
            skim_taken=False, wall_ms=12,
        )
        TRACER.disable()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 events" in out
        assert "MatMul/swp8/clank" in out

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err
