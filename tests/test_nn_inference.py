"""The NN inference workload family and the progress resume policy.

Four contracts from the issue, each with its own class below:

* **Bit-exactness vs the interpreter** — every NN kernel's precise
  compiled build decodes identically to the IR interpreter, and the
  SWP anytime builds converge exactly once all bit-planes retire.
* **Replay/batch parity** — the progress runtime's replay policy and
  its scalar batch lanes reproduce the interpreter's SampleRuns field
  by field (accuracy included) on the NN grid.
* **Chaos compliance** — progress ships in the campaign's default
  runtime set and a 100-scenario seeded campaign reports zero
  crash-consistency violations.
* **Accuracy monotonicity** — masking the asp input to its top
  ``k * bits`` bit-planes reproduces the anytime level-k output (the
  fissioned stage is linear in that input), so top-1 accuracy must be
  non-decreasing in k on a fixed seed.
"""

import pytest

from repro.compiler import evaluate
from repro.core import AnytimeConfig, AnytimeKernel, nrmse
from repro.experiments.common import (
    ExperimentSetup,
    _worker_records,
    calibrate_environment,
    measure_precise_cycles,
    run_benchmark,
)
from repro.power.harvester import paper_traces
from repro.workloads import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    NN_BENCHMARKS,
    make_workload,
)
from repro.workloads.base import top1_accuracy

#: The NN workloads whose quality metric is top-1 accuracy (Pool decodes
#: to pooled activations and stays NRMSE-only).
CLASSIFIERS = ("FC", "MLP", "CNN")


def _serial_env(monkeypatch):
    for key in ("REPRO_JOBS", "REPRO_REPLAY", "REPRO_BATCH",
                "REPRO_BATCH_NUMPY"):
        monkeypatch.delenv(key, raising=False)


def _asp_array(kernel):
    """The kernel's anytime (asp-annotated) input array."""
    for array in kernel.arrays.values():
        if array.pragma is not None and array.pragma.kind == "asp":
            return array
    raise AssertionError("no asp input")


def _masked_accuracy_curve(workload, bits):
    """Top-1 accuracy at every anytime level, via bit-plane masking.

    Level-k SWP execution has retired the top ``k * bits`` bit-planes
    of the asp input; because the fissioned stage is linear in that
    input, evaluating the *unfissioned* kernel with the input masked to
    those planes yields the level-k output exactly.
    """
    array = _asp_array(workload.kernel)
    planes = array.element_bits // bits
    curve = []
    for k in range(1, planes + 1):
        keep = k * bits
        mask = ((1 << keep) - 1) << (array.element_bits - keep)
        inputs = dict(workload.inputs)
        inputs[array.name] = [v & mask for v in workload.inputs[array.name]]
        outputs = evaluate(workload.kernel, inputs)
        curve.append(workload.accuracy(workload.decode(outputs)))
    return curve


class TestFamilyStructure:
    def test_registry_extends_paper_suite(self):
        assert set(NN_BENCHMARKS) == {"FC", "Pool", "MLP", "CNN"}
        assert set(ALL_BENCHMARKS) == set(BENCHMARKS) | set(NN_BENCHMARKS)
        assert not set(BENCHMARKS) & set(NN_BENCHMARKS)

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_kernels_validate(self, name):
        workload = make_workload(name, "tiny")
        workload.kernel.validate()
        assert workload.technique == "swp"
        assert workload.area == "NN Inference"

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_inputs_fit_arrays(self, name):
        workload = make_workload(name, "tiny")
        for array in workload.kernel.inputs():
            values = workload.inputs[array.name]
            assert len(values) == array.length
            if array.signed:
                half = 1 << (array.element_bits - 1)
                assert all(-half <= v < half for v in values)
            else:
                assert all(0 <= v <= array.value_mask for v in values)

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_classifiers_carry_accuracy_hook(self, name):
        workload = make_workload(name, "tiny")
        if name in CLASSIFIERS:
            assert workload.accuracy is not None
            score = workload.accuracy(workload.decoded_reference())
            assert 0.0 <= score <= 1.0
        else:
            assert workload.accuracy is None


class TestBitExactness:
    """Compiled NN builds vs the IR interpreter (the repo's ground truth)."""

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_precise_build_matches_interpreter(self, name):
        workload = make_workload(name, "tiny")
        run = AnytimeKernel(workload.kernel).run(workload.inputs)
        assert workload.decode(run.outputs) == workload.decoded_reference()

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    @pytest.mark.parametrize("bits", [4, 8])
    def test_anytime_converges_exactly(self, name, bits):
        workload = make_workload(name, "tiny")
        kernel = AnytimeKernel(
            workload.kernel, AnytimeConfig(mode="swp", bits=bits)
        )
        run = kernel.run(workload.inputs)
        reference = workload.decoded_reference()
        assert nrmse(reference, workload.decode(run.outputs)) < 1e-9


class TestProgressPolicy:
    """The NodPA-style progress-embedding resume policy."""

    def test_progress_commits_on_output_stores(self):
        workload = make_workload("MLP", "tiny")
        kernel = AnytimeKernel(
            workload.kernel, AnytimeConfig(mode="swp", bits=8)
        )
        trace = paper_traces(count=1, duration_ms=2000, base_seed=23)[0]
        run = kernel.run_intermittent(
            workload.inputs, trace, runtime="progress"
        )
        assert run.result.completed
        stats = run.result.runtime_stats
        assert stats.extra.get("progress_commits", 0) > 0
        # Progress commits preserve only the delta; the run still ends
        # bit-exact against the interpreter.
        assert workload.decode(run.outputs) == workload.decoded_reference()

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_replay_parity_on_nn_grid(self, monkeypatch, name):
        _serial_env(monkeypatch)
        setup = ExperimentSetup(scale="tiny", trace_count=3, invocations=2)
        workload = make_workload(name, setup.scale)
        environment = calibrate_environment(
            measure_precise_cycles(workload), setup
        )
        reference = workload.decoded_reference()

        interp = run_benchmark(
            workload, "swp", 8, "progress", setup, environment, reference
        )
        monkeypatch.setenv("REPRO_REPLAY", "1")
        _worker_records.clear()
        replay = run_benchmark(
            workload, "swp", 8, "progress", setup, environment, reference
        )
        assert replay.runs == interp.runs  # field-by-field, accuracy too

    @pytest.mark.parametrize("name", NN_BENCHMARKS)
    def test_batch_parity_on_nn_grid(self, monkeypatch, name):
        _serial_env(monkeypatch)
        setup = ExperimentSetup(scale="tiny", trace_count=3, invocations=2)
        workload = make_workload(name, setup.scale)
        environment = calibrate_environment(
            measure_precise_cycles(workload), setup
        )
        reference = workload.decoded_reference()

        interp = run_benchmark(
            workload, "swp", 8, "progress", setup, environment, reference
        )
        monkeypatch.setenv("REPRO_BATCH", "1")
        _worker_records.clear()
        batch = run_benchmark(
            workload, "swp", 8, "progress", setup, environment, reference
        )
        assert batch.runs == interp.runs


class TestAccuracyReporting:
    """Top-1 accuracy rides next to NRMSE through the experiment stack."""

    def test_benchmark_reports_accuracy_next_to_nrmse(self):
        setup = ExperimentSetup(scale="tiny", trace_count=2, invocations=1)
        workload = make_workload("MLP", "tiny")
        result = run_benchmark(workload, "swp", 8, "progress", setup)
        assert result.runs
        for run in result.runs:
            assert run.accuracy is not None
            assert 0.0 <= run.accuracy <= 1.0
            assert run.error is not None
        assert result.median_accuracy is not None

    def test_nrmse_only_workloads_stay_accuracy_free(self):
        setup = ExperimentSetup(scale="tiny", trace_count=2, invocations=1)
        workload = make_workload("MatMul", "tiny")
        result = run_benchmark(workload, "swp", 8, "clank", setup)
        assert all(run.accuracy is None for run in result.runs)
        assert result.median_accuracy is None

    def test_top1_scores_trailing_logits(self):
        # Two samples, three classes; logits live after a hidden-layer
        # prefix the scorer must skip.
        scorer = top1_accuracy([2, 0], 3)
        decoded = [9.0, 9.0, 0.0, 1.0, 5.0, 4.0, -1.0, -2.0]
        assert scorer(decoded) == 1.0

    def test_top1_breaks_ties_toward_lowest_class(self):
        scorer = top1_accuracy([0, 1], 2)
        assert scorer([3.0, 3.0, 3.0, 3.0]) == 0.5


class TestAccuracyMonotonicity:
    """More bit-planes never cost accuracy at the grid's subword widths."""

    @pytest.mark.parametrize("name", CLASSIFIERS)
    @pytest.mark.parametrize("bits", [4, 8])
    def test_accuracy_non_decreasing_across_levels(self, name, bits):
        workload = make_workload(name, "tiny")
        curve = _masked_accuracy_curve(workload, bits)
        assert all(a <= b for a, b in zip(curve, curve[1:])), curve
        assert curve[-1] == workload.accuracy(workload.decoded_reference())

    def test_cnn_low_bit_curve_actually_improves(self):
        # At 2-bit subwords the first CNN level misclassifies; refinement
        # is visible, not vacuous.
        workload = make_workload("CNN", "tiny")
        curve = _masked_accuracy_curve(workload, 2)
        assert curve[0] < curve[-1]
        assert all(a <= b for a, b in zip(curve, curve[1:])), curve


class TestChaosCompliance:
    def test_progress_ships_in_default_runtimes(self):
        from repro.fault.campaign import DEFAULT_RUNTIMES

        assert "progress" in DEFAULT_RUNTIMES

    def test_campaign_hundred_scenarios_zero_violations(self):
        from repro.fault.campaign import run_campaign

        report = run_campaign(seed=20260806, count=100)
        assert report["violation_count"] == 0, report["violations"][:3]
        progress_rows = [
            row for row in report["scenarios"] if row["runtime"] == "progress"
        ]
        assert progress_rows, "campaign never exercised the progress runtime"
