"""Tests for the memory-mapped sensor FIFO peripheral."""

import pytest

from repro.isa import assemble
from repro.power import Capacitor, EnergyModel, PowerSupply, wifi_trace
from repro.runtime import ClankRuntime, IntermittentExecutor, NVPRuntime
from repro.sim import CPU, SENSOR_BASE, SensorFIFO, attach_sensor, default_memory

# Drains N samples from the FIFO into a running sum in NVM.
DRAIN_SOURCE = """
.equ SENSOR, 0x40000000
.equ OUT, 0x8000
.equ N, {n}
    MOV R0, #SENSOR
    MOV R1, #OUT
    MOV R2, #0      @ drained count
    MOV R3, #0      @ sum
POLL:
    LDR R4, [R0, #4]    @ STATUS
    CMP R4, #0
    BEQ POLL
    LDR R4, [R0, #0]    @ DATA (destructive pop)
    ADD R3, R3, R4
    STR R3, [R1, #0]
    ADD R2, R2, #1
    CMP R2, #N
    BLT POLL
    HALT
"""


class TestSensorFifo:
    def test_push_pop_order(self):
        sensor = SensorFIFO()
        sensor.push_many([10, 20, 30])
        assert sensor.available == 3
        assert sensor.read(0x0, 4) == 10
        assert sensor.read(0x0, 4) == 20
        assert sensor.available == 1

    def test_empty_reads_zero(self):
        sensor = SensorFIFO()
        assert sensor.read(0x0, 4) == 0

    def test_status_and_dropped_registers(self):
        sensor = SensorFIFO(capacity=2)
        sensor.push_many([1, 2, 3, 4])
        assert sensor.read(0x4, 4) == 2
        assert sensor.read(0x8, 4) == 2
        assert sensor.dropped == 2

    def test_writes_ignored(self):
        sensor = SensorFIFO()
        sensor.write(0x0, 4, 99)
        assert sensor.available == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SensorFIFO(capacity=0)

    def test_mmio_mapping(self):
        memory = default_memory()
        sensor = SensorFIFO()
        attach_sensor(memory, sensor)
        sensor.push(42)
        assert memory.load_word(SENSOR_BASE + 4) == 1
        assert memory.load_word(SENSOR_BASE) == 42
        assert memory.load_word(SENSOR_BASE) == 0

    def test_fifo_survives_power_loss(self):
        memory = default_memory()
        sensor = SensorFIFO()
        attach_sensor(memory, sensor)
        sensor.push(7)
        memory.power_loss()
        assert memory.load_word(SENSOR_BASE) == 7


class TestFirmwareDrain:
    def drain_cpu(self, samples):
        memory = default_memory()
        sensor = SensorFIFO(capacity=len(samples) + 1)
        attach_sensor(memory, sensor)
        sensor.push_many(samples)
        cpu = CPU(assemble(DRAIN_SOURCE.format(n=len(samples))), memory)
        return cpu, sensor

    def test_continuous_drain_sums_all(self):
        samples = [5, 10, 15, 20]
        cpu, sensor = self.drain_cpu(samples)
        cpu.run()
        assert cpu.memory.load_word(0x8000) == sum(samples)
        assert sensor.available == 0

    def test_nvp_drain_is_outage_safe(self):
        """Backup-every-cycle never replays, so destructive reads are safe."""
        samples = list(range(1, 41))
        cpu, sensor = self.drain_cpu(samples)
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=5),
            Capacitor(capacitance_f=0.02e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        result = IntermittentExecutor(cpu, supply, NVPRuntime()).run()
        assert result.completed
        assert result.outages >= 1
        assert cpu.memory.load_word(0x8000) == sum(samples)

    def test_clank_drain_exhibits_replay_hazard(self):
        """A checkpoint-and-replay runtime re-pops samples after
        restores: the classic peripheral hazard (drain into NVM inside
        a transaction to avoid it). The test documents the hazard by
        observing extra DATA reads."""
        samples = list(range(1, 41))
        cpu, sensor = self.drain_cpu(samples)
        supply = PowerSupply(
            wifi_trace(duration_ms=3000, seed=5),
            Capacitor(capacitance_f=0.02e-6, v_initial=3.0, v_max=3.3),
            EnergyModel(),
        )
        result = IntermittentExecutor(
            cpu, supply, ClankRuntime(watchdog_cycles=300)
        ).run(max_wall_ms=200_000)
        if result.completed and result.outages > 0:
            # Replays popped more samples than the firmware consumed.
            assert sensor.reads >= len(samples)
